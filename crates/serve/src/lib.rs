//! # melreq-serve — the simulator as a service
//!
//! A dependency-free (std-only) HTTP/1.1 front end over the typed
//! facade (`melreq_core::api`): POST a [`SimRequest`] body to `/run`
//! (exactly one policy) or `/compare` (one or more), and a worker pool
//! executes it through the same [`Session`] the CLI uses —
//! fork-per-policy warm-up sharing, the persistent checkpoint store,
//! and byte-deterministic reports. The `"report"` field of a `/run`
//! response is **bit-identical** to `melreq run --json` for the same
//! request (pinned by the golden service test); provenance that may
//! vary run-to-run (cache status, wall time, store statistics) lives in
//! the response envelope around it.
//!
//! Connection handling is a single nonblocking event loop
//! ([`poll::Poller`]: epoll on Linux, `poll(2)` elsewhere on Unix) with
//! HTTP/1.1 keep-alive, pipelined request parsing on a reusable
//! per-connection buffer, and idle-connection timeouts; only the
//! simulations themselves run on the bounded worker pool, which hands
//! finished responses back to the loop through a completion queue and a
//! pipe-based waker.
//!
//! Robustness model:
//!
//! * **Backpressure** — a bounded job queue; a full queue answers
//!   `429 Too Many Requests` with `Retry-After` instead of wedging.
//! * **Deadlines** — per-request wall-clock budgets (`timeout_ms`, or
//!   the server default); expired runs are cancelled cooperatively at a
//!   simulation epoch boundary and answer `504`.
//! * **Caching + coalescing** — an opt-in LRU response cache keyed by
//!   the canonical schema-versioned request bytes
//!   ([`SimRequest::canonical_bytes`]) answers repeats without touching
//!   the pool (`"cache":"response"`), and concurrent identical requests
//!   coalesce onto one in-flight simulation, every follower receiving
//!   the same report bytes (`"cache":"coalesced"`).
//! * **Graceful drain** — SIGTERM (via [`install_sigterm`]), POST
//!   `/shutdown`, or [`ServerHandle::shutdown`] stop accepting, finish
//!   every admitted job, flush every response, and only then let the
//!   process exit.
//! * **Introspection** — `GET /healthz` and Prometheus text metrics on
//!   `GET /metrics` (request/response/rejection/timeout counters, queue
//!   depth and in-flight gauges, connection and cache/coalescing
//!   counters, simulated cycles, checkpoint-store statistics).

pub mod http;
pub mod poll;

use melreq_core::api::json::esc;
use melreq_core::api::{MelreqError, Session, SimRequest, SCHEMA_VERSION};
use melreq_core::experiment::RunControl;
use melreq_core::store::CheckpointStore;
use melreq_core::system::CancelToken;
use melreq_obs::metrics::{Counter, Gauge, Histogram, MetricKind, Registry};
use poll::{Interest, Poller, WakeHandle, Waker};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Largest accepted request body.
const MAX_BODY: usize = 1 << 20;

/// Hard ceiling on buffered-but-unparsed bytes per connection (one
/// maximal body plus headroom for pipelined heads).
const MAX_CONN_BUF: usize = MAX_BODY + 32 * 1024;

/// `Retry-After` seconds suggested on queue overflow.
const RETRY_AFTER_S: u64 = 1;

/// Longest the event loop sleeps in the poller — the tick driving idle
/// sweeps, drain progress, and SIGTERM polling.
const TICK_MS: i32 = 100;

/// Histogram bucket upper bounds (seconds) shared by the request and
/// per-stage latency families — sub-millisecond parse/flush stages up
/// through multi-second simulations.
const LATENCY_BUCKETS: [f64; 16] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0,
];

/// Request lifecycle stages, in order, as the `stage` label values of
/// `melreq_serve_request_stage_duration_seconds`.
const STAGES: [&str; 5] = ["parse", "queue", "execute", "render", "flush"];

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

#[cfg(unix)]
fn raw_fd(s: &impl std::os::fd::AsRawFd) -> i32 {
    s.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd<T>(_: &T) -> i32 {
    -1
}

/// Server configuration (`melreq serve` flags map 1:1 onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads executing simulations.
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it requests get 429.
    pub queue_cap: usize,
    /// Checkpoint-store directory; `None` runs storeless.
    pub store_dir: Option<PathBuf>,
    /// Default wall-clock budget for requests that set no `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Response-cache capacity in entries; 0 disables it (the default —
    /// repeats then exercise the checkpoint store instead).
    pub response_cache: usize,
    /// Close keep-alive connections idle longer than this; 0 disables
    /// the sweep. Connections with a simulation in flight are exempt.
    pub idle_timeout_ms: u64,
    /// Structured JSON access log (one line per answered `/run` or
    /// `/compare` request); `None` disables it.
    pub access_log: Option<PathBuf>,
    /// Host-profile output path: when set, [`serve_forever`] enables
    /// the span profiler for the server's lifetime and writes a
    /// Perfetto trace (with embedded summary and buildinfo) on drain.
    pub prof_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7700".to_string(),
            workers: 2,
            queue_cap: 16,
            store_dir: None,
            default_timeout_ms: None,
            response_cache: 0,
            idle_timeout_ms: 30_000,
            access_log: None,
            prof_out: None,
        }
    }
}

/// Which endpoint a queued job came from (metrics label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Run,
    Compare,
}

impl Endpoint {
    fn as_str(self) -> &'static str {
        match self {
            Endpoint::Run => "run",
            Endpoint::Compare => "compare",
        }
    }
}

/// One admitted simulation, owned by the worker pool. The connection is
/// referenced by token only — the event loop keeps the socket.
struct Job {
    token: u64,
    /// Request id (process-wide, monotonically assigned at dispatch) —
    /// threads the connection's lifecycle trace through the worker.
    id: u64,
    /// Canonical identity bytes ([`SimRequest::canonical_bytes`]) — the
    /// coalescing and response-cache key.
    key: String,
    req: SimRequest,
    deadline: Option<Instant>,
    /// When the job entered the bounded queue (queue-wait timing).
    queued_at: Instant,
}

/// A finished job (or error), handed from a worker back to the event
/// loop for delivery. Stage durations ride along so the loop can merge
/// them into the connection's request trace; coalesced followers carry
/// zeros (they did no work of their own).
struct Completion {
    token: u64,
    status: u16,
    body: String,
    /// Cache disposition for the access log ("cold"/"warm"/"partial",
    /// "coalesced", or "none" on errors).
    cache: &'static str,
    queue: Duration,
    execute: Duration,
    render: Duration,
}

struct Metrics {
    registry: Registry,
    requests: Vec<(&'static str, Arc<Counter>)>,
    responses: Vec<(u16, Arc<Counter>)>,
    rejected: Arc<Counter>,
    timeouts: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    inflight_requests: Arc<Gauge>,
    open_connections: Arc<Gauge>,
    connections_total: Arc<Counter>,
    sim_cycles: Arc<Counter>,
    simulations: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    coalesced: Arc<Counter>,
    request_duration: Arc<Histogram>,
    stage_durations: Vec<(&'static str, Arc<Histogram>)>,
}

impl Metrics {
    fn new() -> Self {
        let registry = Registry::new();
        let requests =
            ["run", "compare", "healthz", "metrics", "shutdown", "buildinfo", "policies"]
                .into_iter()
                .map(|ep| {
                    let c = registry.counter(
                        &format!("melreq_requests_total{{endpoint=\"{ep}\"}}"),
                        "Requests received, by endpoint.",
                    );
                    (ep, c)
                })
                .collect();
        let responses = [200u16, 400, 404, 405, 429, 500, 504]
            .into_iter()
            .map(|code| {
                let c = registry.counter(
                    &format!("melreq_responses_total{{code=\"{code}\"}}"),
                    "Responses sent, by status code.",
                );
                (code, c)
            })
            .collect();
        let rejected = registry
            .counter("melreq_rejected_total", "Requests rejected by queue backpressure (429).");
        let timeouts = registry
            .counter("melreq_timeouts_total", "Requests that exceeded their wall-clock deadline.");
        let queue_depth =
            registry.gauge("melreq_queue_depth", "Jobs waiting in the bounded queue.");
        let inflight_requests = registry.gauge(
            "melreq_inflight_requests",
            "Simulation requests admitted (queued, running, or coalesced) and not yet answered.",
        );
        let open_connections = registry
            .gauge("melreq_open_connections", "Connections currently held by the event loop.");
        let connections_total =
            registry.counter("melreq_connections_total", "Connections accepted since start.");
        let sim_cycles = registry
            .counter("melreq_sim_cycles_total", "Simulated cycles executed on behalf of requests.");
        let simulations = registry.counter(
            "melreq_simulations_total",
            "Simulations actually executed by the worker pool (cached and coalesced requests excluded).",
        );
        let cache_hits = registry
            .counter("melreq_serve_cache_hits_total", "Requests answered from the response cache.");
        let cache_misses = registry.counter(
            "melreq_serve_cache_misses_total",
            "Cache-enabled requests that missed the response cache.",
        );
        let cache_evictions = registry.counter(
            "melreq_serve_cache_evictions_total",
            "Entries evicted from the response cache (LRU, bounded capacity).",
        );
        let coalesced = registry.counter(
            "melreq_serve_coalesced_total",
            "Requests coalesced onto an identical in-flight simulation.",
        );
        let request_duration = registry.histogram(
            "melreq_serve_request_duration_seconds",
            "End-to-end simulation request latency: parse start to final flush.",
            &LATENCY_BUCKETS,
        );
        let stage_durations = STAGES
            .into_iter()
            .map(|stage| {
                let h = registry.histogram(
                    &format!("melreq_serve_request_stage_duration_seconds{{stage=\"{stage}\"}}"),
                    "Simulation request latency by lifecycle stage.",
                    &LATENCY_BUCKETS,
                );
                (stage, h)
            })
            .collect();
        Metrics {
            registry,
            requests,
            responses,
            rejected,
            timeouts,
            queue_depth,
            inflight_requests,
            open_connections,
            connections_total,
            sim_cycles,
            simulations,
            cache_hits,
            cache_misses,
            cache_evictions,
            coalesced,
            request_duration,
            stage_durations,
        }
    }

    fn observe_stage(&self, stage: &str, d: Duration) {
        if let Some((_, h)) = self.stage_durations.iter().find(|(s, _)| *s == stage) {
            h.observe(d.as_secs_f64());
        }
    }

    fn count_request(&self, endpoint: &str) {
        if let Some((_, c)) = self.requests.iter().find(|(ep, _)| *ep == endpoint) {
            c.inc();
        }
    }

    fn count_response(&self, status: u16) {
        if let Some((_, c)) = self.responses.iter().find(|(code, _)| *code == status) {
            c.inc();
        }
    }
}

/// Bounded LRU over `(canonical request bytes → report bytes)`. The
/// stored value is the deterministic report JSON only — envelopes are
/// rendered per response, so `"cache":"response"` answers stay
/// byte-identical to a cold `/run` in their `"report"` field.
struct ResponseCache {
    cap: usize,
    /// Front = most recently used.
    entries: VecDeque<(String, Arc<String>)>,
}

impl ResponseCache {
    fn new(cap: usize) -> Self {
        ResponseCache { cap, entries: VecDeque::new() }
    }

    fn get(&mut self, key: &str) -> Option<Arc<String>> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos).expect("position is in range");
        let report = entry.1.clone();
        self.entries.push_front(entry);
        Some(report)
    }

    /// Insert (or refresh) an entry; returns how many entries the
    /// capacity bound evicted.
    fn insert(&mut self, key: String, report: Arc<String>) -> u64 {
        if self.cap == 0 {
            return 0;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let entry = self.entries.remove(pos).expect("position is in range");
            self.entries.push_front(entry);
            return 0;
        }
        self.entries.push_front((key, report));
        let mut evicted = 0u64;
        while self.entries.len() > self.cap {
            self.entries.pop_back();
            evicted += 1;
        }
        evicted
    }
}

struct Shared {
    cfg: ServeConfig,
    session: Session,
    queue: Mutex<VecDeque<Job>>,
    cond: Condvar,
    draining: AtomicBool,
    metrics: Metrics,
    response_cache: Mutex<ResponseCache>,
    /// In-flight coalescing registry: canonical request bytes → tokens
    /// of follower connections waiting on the leader's run. An entry
    /// exists exactly while a job for that key is queued or executing.
    coalesce: Mutex<BTreeMap<String, Vec<u64>>>,
    /// Finished jobs awaiting delivery by the event loop.
    completions: Mutex<VecDeque<Completion>>,
    /// Jobs admitted to the queue whose completions have not been
    /// published yet (drain barrier).
    jobs_outstanding: AtomicUsize,
    /// Monotonic request-id source for `/run`//`compare` lifecycle
    /// traces (ids start at 1; 0 never appears in a log line).
    next_request_id: AtomicU64,
    waker: WakeHandle,
}

/// A running server: bound address plus the thread handles needed to
/// drain it. Dropping the handle without [`ServerHandle::join`] leaves
/// the threads running for the life of the process.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain: stop accepting, let workers finish every
    /// admitted job. Idempotent; returns immediately.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        self.shared.waker.wake();
    }

    /// Wait for the event loop and every worker to exit (all admitted
    /// work is answered and flushed once this returns).
    pub fn join(self) {
        let _ = self.event_loop.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Bind, spawn the worker pool and the event loop, and return.
pub fn start(cfg: ServeConfig) -> Result<ServerHandle, MelreqError> {
    let session = match &cfg.store_dir {
        Some(dir) => {
            let store = CheckpointStore::open(dir)
                .map_err(|e| MelreqError::Io(format!("open store {}: {e}", dir.display())))?;
            Session::with_store(Arc::new(store))
        }
        None => Session::new(),
    };
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| MelreqError::Io(format!("bind {}: {e}", cfg.addr)))?;
    let addr = listener.local_addr().map_err(|e| MelreqError::Io(format!("local_addr: {e}")))?;
    listener.set_nonblocking(true).map_err(|e| MelreqError::Io(format!("set_nonblocking: {e}")))?;

    type StatProbe = fn(&melreq_core::StoreStats) -> u64;
    let metrics = Metrics::new();
    if let Some(store) = session.store() {
        let probes: [(&str, StatProbe); 4] = [
            ("melreq_store_warmup_hits_total", |s| s.warmup_hits),
            ("melreq_store_warmup_misses_total", |s| s.warmup_misses),
            ("melreq_store_profile_hits_total", |s| s.profile_hits),
            ("melreq_store_profile_misses_total", |s| s.profile_misses),
        ];
        for (name, probe) in probes {
            let store = store.clone();
            #[allow(clippy::cast_precision_loss)]
            metrics.registry.func(
                name,
                "Checkpoint-store activity since server start.",
                MetricKind::Counter,
                move || probe(&store.stats()) as f64,
            );
        }
    }

    let mut poller = Poller::new().map_err(|e| MelreqError::Io(format!("poller: {e}")))?;
    let (waker, wake_handle) =
        poll::wake_pair().map_err(|e| MelreqError::Io(format!("wake pipe: {e}")))?;
    poller
        .add(raw_fd(&listener), LISTENER_TOKEN, Interest::Read)
        .map_err(|e| MelreqError::Io(format!("register listener: {e}")))?;
    poller
        .add(waker.fd(), WAKER_TOKEN, Interest::Read)
        .map_err(|e| MelreqError::Io(format!("register waker: {e}")))?;

    let shared = Arc::new(Shared {
        cfg: cfg.clone(),
        session,
        queue: Mutex::new(VecDeque::new()),
        cond: Condvar::new(),
        draining: AtomicBool::new(false),
        metrics,
        response_cache: Mutex::new(ResponseCache::new(cfg.response_cache)),
        coalesce: Mutex::new(BTreeMap::new()),
        completions: Mutex::new(VecDeque::new()),
        jobs_outstanding: AtomicUsize::new(0),
        next_request_id: AtomicU64::new(0),
        waker: wake_handle,
    });

    let access_log =
        match &cfg.access_log {
            Some(path) => {
                Some(std::fs::OpenOptions::new().create(true).append(true).open(path).map_err(
                    |e| MelreqError::Io(format!("open access log {}: {e}", path.display())),
                )?)
            }
            None => None,
        };

    let workers = (0..cfg.workers.max(1))
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("melreq-worker-{i}"))
                .spawn(move || worker_loop(&shared, i))
                .expect("spawn worker thread")
        })
        .collect();
    let event_loop = {
        let state = EventLoop {
            shared: shared.clone(),
            poller,
            waker,
            listener: Some(listener),
            conns: BTreeMap::new(),
            next_token: FIRST_CONN_TOKEN,
            access_log,
        };
        std::thread::Builder::new()
            .name("melreq-netio".to_string())
            .spawn(move || state.run())
            .expect("spawn event-loop thread")
    };
    Ok(ServerHandle { addr, shared, event_loop, workers })
}

/// Run a server in the foreground until it drains (SIGTERM, or POST
/// `/shutdown`). Prints the listening line up front; returns a final
/// summary for the CLI to print.
pub fn serve_forever(cfg: ServeConfig) -> Result<String, MelreqError> {
    install_sigterm();
    if cfg.prof_out.is_some() {
        melreq_prof::enable();
    }
    let store_note = match &cfg.store_dir {
        Some(dir) => format!("store {}", dir.display()),
        None => "no store".to_string(),
    };
    let handle = start(cfg.clone())?;
    println!(
        "melreq-serve listening on {} ({} workers, queue {}, cache {}, {})",
        handle.addr(),
        cfg.workers.max(1),
        cfg.queue_cap,
        cfg.response_cache,
        store_note
    );
    handle.join();
    if let Some(path) = &cfg.prof_out {
        melreq_prof::disable();
        let profile = melreq_prof::drain();
        let summary = melreq_prof::summarize(&profile, 10);
        let trace = melreq_obs::export_host_profile(
            &profile,
            "melreq serve",
            &[("summary", summary.render_json()), ("buildinfo", buildinfo_json(&cfg))],
        );
        std::fs::write(path, trace)
            .map_err(|e| MelreqError::Io(format!("write profile {}: {e}", path.display())))?;
        return Ok(format!(
            "{}\nhost profile written to {}\nmelreq-serve drained cleanly",
            summary.render_text(),
            path.display()
        ));
    }
    Ok("melreq-serve drained cleanly".to_string())
}

/// Render the `/buildinfo` body: crate version, request schema version,
/// compiled poller backend, and the effective worker/queue/feature
/// configuration. The same block is embedded in `--profile` artifacts
/// so a trace records which build and configuration produced it.
pub fn buildinfo_json(cfg: &ServeConfig) -> String {
    format!(
        "{{\"name\":\"melreq-serve\",\"version\":\"{}\",\"schema_version\":{SCHEMA_VERSION},\
         \"poller\":\"{}\",\"workers\":{},\"queue_cap\":{},\"response_cache\":{},\"store\":{},\
         \"profiling\":{},\"access_log\":{}}}",
        env!("CARGO_PKG_VERSION"),
        poll::backend_name(),
        cfg.workers.max(1),
        cfg.queue_cap,
        cfg.response_cache,
        cfg.store_dir.is_some(),
        cfg.prof_out.is_some(),
        cfg.access_log.is_some(),
    )
}

/// Per-connection event-loop state. `rbuf` accumulates unparsed input
/// (possibly several pipelined requests); `wbuf`/`wpos` hold rendered
/// but unflushed responses.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// One simulation request outstanding (leader or coalesced
    /// follower); parsing pauses until its response is sent, which
    /// keeps pipelined responses in order.
    busy: bool,
    /// The current request asked for `Connection: close`.
    close_requested: bool,
    /// Close once `wbuf` is fully flushed.
    close_after_write: bool,
    /// Peer closed its write side (EOF seen).
    read_closed: bool,
    /// Write interest currently registered in the poller.
    want_write: bool,
    last_activity: Instant,
    /// Lifecycle trace of the simulation request currently in flight on
    /// this connection. At most one exists because `busy` pauses
    /// parsing until the previous response is delivered.
    trace: Option<ReqTrace>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            busy: false,
            close_requested: false,
            close_after_write: false,
            read_closed: false,
            want_write: false,
            last_activity: Instant::now(),
            trace: None,
        }
    }
}

/// Per-request lifecycle record: stage timings accumulate as the
/// request moves parse → queue → execute → render → flush, and the
/// whole record is finalized (histograms, profiler spans, access log)
/// once the response bytes have fully left the process.
struct ReqTrace {
    id: u64,
    endpoint: &'static str,
    /// When parsing of this request began (the request's time zero).
    start: Instant,
    parse: Duration,
    queue: Duration,
    execute: Duration,
    render: Duration,
    /// Cache disposition ("response" for cache hits, worker-reported
    /// otherwise; "none" until known).
    cache: &'static str,
    status: u16,
    /// When the response was queued on the connection (flush begins).
    sent_at: Option<Instant>,
}

impl ReqTrace {
    fn new(id: u64, endpoint: &'static str, start: Instant, parse: Duration) -> Self {
        ReqTrace {
            id,
            endpoint,
            start,
            parse,
            queue: Duration::ZERO,
            execute: Duration::ZERO,
            render: Duration::ZERO,
            cache: "none",
            status: 0,
            sent_at: None,
        }
    }
}

enum FlushOutcome {
    /// Everything written; close if that was requested.
    Flushed,
    /// Socket buffer full; need write readiness.
    Pending,
    /// Connection is unusable.
    Dead,
}

struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    waker: Waker,
    listener: Option<TcpListener>,
    conns: BTreeMap<u64, Conn>,
    next_token: u64,
    /// Open `--access-log` sink (append mode); one JSON line per
    /// finalized simulation request.
    access_log: Option<std::fs::File>,
}

impl EventLoop {
    fn run(mut self) {
        melreq_prof::set_thread_track(|| "serve netio".to_string());
        let mut events: Vec<poll::Event> = Vec::new();
        loop {
            if sigterm_received() || self.shared.draining.load(Ordering::SeqCst) {
                self.begin_drain();
                if self.drained() {
                    break;
                }
            }
            if self.poller.wait(&mut events, TICK_MS).is_err() {
                break;
            }
            for ev in &events {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.waker.drain(),
                    token => {
                        if ev.readable {
                            self.on_readable(token);
                        }
                        if ev.writable {
                            self.on_writable(token);
                        }
                        if ev.hangup {
                            self.on_hangup(token);
                        }
                    }
                }
            }
            self.drain_completions();
            self.sweep_idle();
        }
        // Exit: make sure workers observe the drain too.
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        // Thread join does not wait for TLS destructors; flush the span
        // recorder explicitly so a post-join drain sees this thread.
        melreq_prof::flush_thread();
    }

    /// Idempotent drain entry: stop accepting, wake workers, drop
    /// connections with nothing pending.
    fn begin_drain(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.remove(raw_fd(&listener));
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy && c.wbuf.is_empty())
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }

    /// All admitted work answered and flushed?
    fn drained(&self) -> bool {
        self.shared.jobs_outstanding.load(Ordering::SeqCst) == 0
            && self.shared.completions.lock().expect("completions poisoned").is_empty()
            && self.conns.values().all(|c| c.wbuf.is_empty() && !c.busy)
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.add(raw_fd(&stream), token, Interest::Read).is_err() {
                        continue;
                    }
                    self.shared.metrics.connections_total.inc();
                    self.shared.metrics.open_connections.inc();
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn on_readable(&mut self, token: u64) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let mut chunk = [0u8; 8192];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        if conn.rbuf.len() > MAX_CONN_BUF {
                            dead = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            conn.last_activity = Instant::now();
        }
        if dead {
            self.close_conn(token);
            return;
        }
        self.advance(token);
    }

    fn on_writable(&mut self, token: u64) {
        self.flush(token);
    }

    fn on_hangup(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        conn.read_closed = true;
        // A busy connection keeps its socket: the response may still be
        // deliverable, and the completion path needs the token.
        if !conn.busy && conn.wbuf.is_empty() {
            self.close_conn(token);
        }
    }

    /// Parse every complete pipelined request the connection is allowed
    /// to start (at most one simulation in flight per connection), then
    /// flush.
    fn advance(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.busy || conn.close_after_write {
                break;
            }
            let parse_started = Instant::now();
            match http::parse_request(&conn.rbuf, MAX_BODY) {
                Ok(None) => break,
                Ok(Some((request, consumed))) => {
                    let parse = parse_started.elapsed();
                    conn.rbuf.drain(..consumed);
                    if request.close {
                        conn.close_requested = true;
                    }
                    self.dispatch(token, &request, parse_started, parse);
                }
                Err(e) => {
                    let body = error_body(400, "usage", &format!("bad request: {e}"));
                    self.send_close(token, 400, "application/json", &[], &body);
                    break;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.read_closed && !conn.busy && conn.wbuf.is_empty() {
            self.close_conn(token);
            return;
        }
        self.flush(token);
    }

    fn dispatch(
        &mut self,
        token: u64,
        request: &http::HttpRequest,
        started: Instant,
        parse: Duration,
    ) {
        let shared = self.shared.clone();
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                shared.metrics.count_request("healthz");
                let body = format!(
                    "{{\"status\":\"ok\",\"schema_version\":{SCHEMA_VERSION},\"queue_depth\":{}}}",
                    shared.queue.lock().expect("queue poisoned").len()
                );
                self.send(token, 200, "application/json", &[], &body);
            }
            ("GET", "/metrics") => {
                shared.metrics.count_request("metrics");
                let body = shared.metrics.registry.render();
                self.send(token, 200, "text/plain; version=0.0.4", &[], &body);
            }
            ("POST", "/shutdown") => {
                shared.metrics.count_request("shutdown");
                shared.draining.store(true, Ordering::SeqCst);
                self.send(token, 200, "application/json", &[], "{\"status\":\"draining\"}");
                self.begin_drain();
            }
            ("GET", "/buildinfo") => {
                shared.metrics.count_request("buildinfo");
                let body = buildinfo_json(&shared.cfg);
                self.send(token, 200, "application/json", &[], &body);
            }
            ("GET", "/policies") => {
                shared.metrics.count_request("policies");
                let body = format!(
                    "{{\"schema_version\":{SCHEMA_VERSION},\"policies\":{}}}",
                    melreq_core::api::registry_json()
                );
                self.send(token, 200, "application/json", &[], &body);
            }
            ("POST", path @ ("/run" | "/compare")) => {
                let endpoint = if path == "/run" { Endpoint::Run } else { Endpoint::Compare };
                shared.metrics.count_request(endpoint.as_str());
                let id = shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
                // Replacing a not-yet-finalized trace (possible only
                // when a pipelined response is still flushing) settles
                // the old one now rather than losing it.
                let prev = match self.conns.get_mut(&token) {
                    Some(conn) => {
                        conn.trace.replace(ReqTrace::new(id, endpoint.as_str(), started, parse))
                    }
                    None => None,
                };
                if let Some(t) = prev {
                    if t.sent_at.is_some() {
                        self.finalize_request(t);
                    }
                }
                match parse_sim_request(&request.body, endpoint) {
                    Ok(req) => self.admit(token, id, req),
                    Err(e) => self.send_error(token, &e),
                }
            }
            (
                _,
                "/healthz" | "/metrics" | "/buildinfo" | "/policies" | "/shutdown" | "/run"
                | "/compare",
            ) => {
                let body = error_body(405, "usage", "method not allowed");
                self.send(token, 405, "application/json", &[], &body);
            }
            (_, path) => {
                let body = error_body(404, "usage", &format!("unknown endpoint '{path}'"));
                self.send(token, 404, "application/json", &[], &body);
            }
        }
    }

    /// Admit one parsed simulation request: response cache, then
    /// coalescing, then the bounded queue (or 429).
    fn admit(&mut self, token: u64, id: u64, req: SimRequest) {
        let shared = self.shared.clone();
        let key = req.canonical_bytes();

        if shared.cfg.response_cache > 0 {
            let hit = shared.response_cache.lock().expect("response cache poisoned").get(&key);
            match hit {
                Some(report) => {
                    shared.metrics.cache_hits.inc();
                    if let Some(t) = self.conns.get_mut(&token).and_then(|conn| conn.trace.as_mut())
                    {
                        t.cache = "response";
                    }
                    let body = envelope(&report, "response", &shared);
                    self.send(token, 200, "application/json", &[], &body);
                    return;
                }
                None => shared.metrics.cache_misses.inc(),
            }
        }

        {
            let mut coalesce = shared.coalesce.lock().expect("coalesce poisoned");
            if let Some(waiters) = coalesce.get_mut(&key) {
                waiters.push(token);
                drop(coalesce);
                shared.metrics.inflight_requests.inc();
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.busy = true;
                }
                return;
            }
        }

        let timeout_ms = req.timeout_ms.or(shared.cfg.default_timeout_ms);
        let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if queue.len() >= shared.cfg.queue_cap || shared.draining.load(Ordering::SeqCst) {
            drop(queue);
            shared.metrics.rejected.inc();
            let err = MelreqError::Overload { retry_after_s: RETRY_AFTER_S };
            let body = error_body(err.http_status(), kind(&err), &err.to_string());
            self.send(
                token,
                err.http_status(),
                "application/json",
                &[("Retry-After", RETRY_AFTER_S.to_string())],
                &body,
            );
            return;
        }
        // Publish the coalescing entry before the job becomes visible:
        // a worker finishing the job resolves the entry, so it must
        // exist first.
        shared.coalesce.lock().expect("coalesce poisoned").insert(key.clone(), Vec::new());
        queue.push_back(Job { token, id, key, req, deadline, queued_at: Instant::now() });
        shared.jobs_outstanding.fetch_add(1, Ordering::SeqCst);
        shared.metrics.queue_depth.set(i64::try_from(queue.len()).unwrap_or(i64::MAX));
        shared.metrics.inflight_requests.inc();
        drop(queue);
        shared.cond.notify_one();
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.busy = true;
        }
    }

    /// Deliver every pending worker completion, then let the affected
    /// connections resume parsing pipelined input.
    fn drain_completions(&mut self) {
        loop {
            let completion =
                self.shared.completions.lock().expect("completions poisoned").pop_front();
            let Some(c) = completion else { break };
            self.shared.metrics.inflight_requests.dec();
            if self.conns.contains_key(&c.token) {
                if let Some(conn) = self.conns.get_mut(&c.token) {
                    conn.busy = false;
                    if let Some(t) = conn.trace.as_mut() {
                        t.cache = c.cache;
                        t.queue = c.queue;
                        t.execute = c.execute;
                        t.render = c.render;
                    }
                }
                self.send(c.token, c.status, "application/json", &[], &c.body);
                self.advance(c.token);
            }
        }
    }

    fn sweep_idle(&mut self) {
        if self.shared.cfg.idle_timeout_ms == 0 {
            return;
        }
        let idle = Duration::from_millis(self.shared.cfg.idle_timeout_ms);
        let now = Instant::now();
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                !c.busy && c.wbuf.is_empty() && now.duration_since(c.last_activity) >= idle
            })
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            self.close_conn(token);
        }
    }

    fn send_error(&mut self, token: u64, err: &MelreqError) {
        if matches!(err, MelreqError::Timeout(_)) {
            self.shared.metrics.timeouts.inc();
        }
        let status = err.http_status();
        let body = error_body(status, kind(err), &err.to_string());
        self.send(token, status, "application/json", &[], &body);
    }

    /// Queue a response on the connection and flush what the socket
    /// accepts. The `Connection` header honors the request's
    /// keep-alive/close choice; during a drain every response closes.
    fn send(
        &mut self,
        token: u64,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
        body: &str,
    ) {
        let draining = self.shared.draining.load(Ordering::SeqCst);
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if let Some(t) = conn.trace.as_mut() {
            if t.sent_at.is_none() {
                t.sent_at = Some(Instant::now());
                t.status = status;
            }
        }
        let close = conn.close_requested || draining;
        self.shared.metrics.count_response(status);
        conn.wbuf.extend_from_slice(&http::response_bytes(
            status,
            content_type,
            extra_headers,
            body,
            close,
        ));
        if close {
            conn.close_after_write = true;
        }
        self.flush(token);
    }

    /// Like [`EventLoop::send`] but always closes afterwards (protocol
    /// errors poison the parse state).
    fn send_close(
        &mut self,
        token: u64,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
        body: &str,
    ) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.close_requested = true;
        }
        self.send(token, status, content_type, extra_headers, body);
    }

    fn flush(&mut self, token: u64) {
        let (outcome, finished) = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let mut outcome = FlushOutcome::Flushed;
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        outcome = FlushOutcome::Dead;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        outcome = FlushOutcome::Pending;
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        outcome = FlushOutcome::Dead;
                        break;
                    }
                }
            }
            let mut finished = None;
            if matches!(outcome, FlushOutcome::Flushed) {
                conn.wbuf.clear();
                conn.wpos = 0;
                // The traced response (if any) has fully left the
                // process — settle its lifecycle record. `sent_at` set
                // distinguishes answered requests from one still with
                // the worker pool.
                if conn.trace.as_ref().is_some_and(|t| t.sent_at.is_some()) {
                    finished = conn.trace.take();
                }
                if conn.close_after_write {
                    outcome = FlushOutcome::Dead;
                }
            }
            (outcome, finished)
        };
        if let Some(trace) = finished {
            self.finalize_request(trace);
        }
        match outcome {
            FlushOutcome::Dead => self.close_conn(token),
            FlushOutcome::Pending => self.set_write_interest(token, true),
            FlushOutcome::Flushed => self.set_write_interest(token, false),
        }
    }

    /// A traced request's response bytes are on the wire: observe the
    /// request and per-stage latency histograms, emit the profiler's
    /// lifecycle spans, and write the access-log line.
    fn finalize_request(&mut self, t: ReqTrace) {
        let now = Instant::now();
        let sent_at = t.sent_at.unwrap_or(now);
        let flush = now.duration_since(sent_at);
        let total = now.duration_since(t.start);
        let m = &self.shared.metrics;
        m.request_duration.observe(total.as_secs_f64());
        m.observe_stage("parse", t.parse);
        m.observe_stage("queue", t.queue);
        m.observe_stage("execute", t.execute);
        m.observe_stage("render", t.render);
        m.observe_stage("flush", flush);
        if melreq_prof::enabled() {
            let start_ns = melreq_prof::ns_of(t.start);
            let end_ns = melreq_prof::ns_of(now);
            melreq_prof::record(
                "serve.parse",
                || format!("parse #{}", t.id),
                start_ns,
                start_ns.saturating_add(dur_ns(t.parse)),
                &[("id", t.id)],
            );
            melreq_prof::record(
                "serve.flush",
                || format!("flush #{}", t.id),
                melreq_prof::ns_of(sent_at),
                end_ns,
                &[("id", t.id)],
            );
            melreq_prof::record(
                "serve.request",
                || format!("{} #{}", t.endpoint, t.id),
                start_ns,
                end_ns,
                &[("id", t.id), ("status", u64::from(t.status))],
            );
        }
        if let Some(log) = self.access_log.as_mut() {
            let line = format!(
                "{{\"id\":{},\"endpoint\":\"{}\",\"status\":{},\"cache\":\"{}\",\
                 \"parse_us\":{},\"queue_us\":{},\"execute_us\":{},\"render_us\":{},\
                 \"flush_us\":{},\"total_us\":{}}}\n",
                t.id,
                t.endpoint,
                t.status,
                t.cache,
                t.parse.as_micros(),
                t.queue.as_micros(),
                t.execute.as_micros(),
                t.render.as_micros(),
                flush.as_micros(),
                total.as_micros(),
            );
            let _ = log.write_all(line.as_bytes());
        }
    }

    fn set_write_interest(&mut self, token: u64, on: bool) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.want_write == on {
            return;
        }
        conn.want_write = on;
        let interest = if on { Interest::ReadWrite } else { Interest::Read };
        let _ = self.poller.modify(raw_fd(&conn.stream), token, interest);
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.remove(raw_fd(&conn.stream));
            self.shared.metrics.open_connections.dec();
        }
    }
}

fn parse_sim_request(body: &str, endpoint: Endpoint) -> Result<SimRequest, MelreqError> {
    let req = SimRequest::from_json(body)?;
    if endpoint == Endpoint::Run && req.policies.len() != 1 {
        return Err(MelreqError::Usage(format!(
            "/run takes exactly one policy (got {}); POST policy sets to /compare",
            req.policies.len()
        )));
    }
    Ok(req)
}

/// Nanoseconds in `d`, saturating (a span arg / duration cast helper).
fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn worker_loop(shared: &Arc<Shared>, idx: usize) {
    melreq_prof::set_thread_track(|| format!("serve-worker-{idx}"));
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.metrics.queue_depth.set(i64::try_from(queue.len()).unwrap_or(i64::MAX));
                    break Some(job);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .cond
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        let Some(job) = job else { break };
        execute_job(job, shared);
    }
    // Thread join does not wait for TLS destructors; flush the span
    // recorder explicitly so a post-join drain sees this worker.
    melreq_prof::flush_thread();
}

/// Run one job, resolve its coalescing entry, and publish a completion
/// for the leader plus every coalesced follower.
fn execute_job(job: Job, shared: &Arc<Shared>) {
    let Job { token, id, key, req, deadline, queued_at } = job;
    let picked = Instant::now();
    let queue_wait = picked.duration_since(queued_at);
    melreq_prof::record(
        "serve.queue",
        || format!("queue #{id}"),
        melreq_prof::ns_of(queued_at),
        melreq_prof::ns_of(picked),
        &[("id", id)],
    );
    let mut execute = Duration::ZERO;
    let mut render = Duration::ZERO;
    // A deadline that expired while the job sat in the queue is still a
    // timeout — the simulation is simply never started.
    let outcome: Result<(Arc<String>, &'static str), MelreqError> =
        if deadline.is_some_and(|d| Instant::now() >= d) {
            Err(MelreqError::Timeout(
                "request deadline expired while queued; the run was not started".to_string(),
            ))
        } else {
            let ctl = RunControl {
                cancel: deadline.map(CancelToken::with_deadline),
                max_cycles: None,
                threads: None,
            };
            let exec_started = Instant::now();
            let run = {
                let mut sp = melreq_prof::span("serve.execute", || format!("execute #{id}"));
                sp.arg("id", id);
                shared.session.run(&req, &ctl)
            };
            execute = exec_started.elapsed();
            run.map(|report| {
                let mut cycles = 0u64;
                for p in &report.policies {
                    cycles = cycles.saturating_add(p.sim_cycles);
                }
                shared.metrics.sim_cycles.add(cycles);
                shared.metrics.simulations.inc();
                let cache_status = if report.all_warm() {
                    "warm"
                } else if report.any_warm() {
                    "partial"
                } else {
                    "cold"
                };
                let render_started = Instant::now();
                let report_json = {
                    let mut sp = melreq_prof::span("serve.render", || format!("render #{id}"));
                    sp.arg("id", id);
                    Arc::new(report.to_json())
                };
                render = render_started.elapsed();
                if shared.cfg.response_cache > 0 {
                    let evicted = shared
                        .response_cache
                        .lock()
                        .expect("response cache poisoned")
                        .insert(key.clone(), report_json.clone());
                    if evicted > 0 {
                        shared.metrics.cache_evictions.add(evicted);
                    }
                }
                (report_json, cache_status)
            })
        };

    // Resolve the coalescing entry before publishing: requests arriving
    // after this point either hit the response cache or start a fresh
    // run — they can no longer join this one.
    let waiters =
        shared.coalesce.lock().expect("coalesce poisoned").remove(&key).unwrap_or_default();

    let mut batch = Vec::with_capacity(1 + waiters.len());
    match &outcome {
        Ok((report_json, cache_status)) => {
            batch.push(Completion {
                token,
                status: 200,
                body: envelope(report_json, cache_status, shared),
                cache: cache_status,
                queue: queue_wait,
                execute,
                render,
            });
            if !waiters.is_empty() {
                shared.metrics.coalesced.add(waiters.len() as u64);
                let body = envelope(report_json, "coalesced", shared);
                for w in waiters {
                    batch.push(Completion {
                        token: w,
                        status: 200,
                        body: body.clone(),
                        cache: "coalesced",
                        queue: Duration::ZERO,
                        execute: Duration::ZERO,
                        render: Duration::ZERO,
                    });
                }
            }
        }
        Err(err) => {
            if matches!(err, MelreqError::Timeout(_)) {
                shared.metrics.timeouts.inc();
            }
            let status = err.http_status();
            let body = error_body(status, kind(err), &err.to_string());
            for t in std::iter::once(token).chain(waiters) {
                batch.push(Completion {
                    token: t,
                    status,
                    body: body.clone(),
                    cache: "none",
                    queue: queue_wait,
                    execute,
                    render: Duration::ZERO,
                });
            }
        }
    }
    shared.completions.lock().expect("completions poisoned").extend(batch);
    shared.jobs_outstanding.fetch_sub(1, Ordering::SeqCst);
    shared.waker.wake();
}

/// The response envelope: provenance fields first, the deterministic
/// report verbatim last — `"report":` up to the final `}` is exactly
/// [`melreq_core::api::SimReport::to_json`]'s bytes.
fn envelope(report_json: &str, cache: &str, shared: &Shared) -> String {
    let store = match shared.session.store() {
        Some(store) => {
            let s = store.stats();
            format!(
                "{{\"warmup_hits\":{},\"warmup_misses\":{},\"profile_hits\":{},\"profile_misses\":{}}}",
                s.warmup_hits, s.warmup_misses, s.profile_hits, s.profile_misses
            )
        }
        None => "null".to_string(),
    };
    format!("{{\"cache\":\"{cache}\",\"store\":{store},\"report\":{report_json}}}")
}

fn kind(err: &MelreqError) -> &'static str {
    match err {
        MelreqError::Usage(_) => "usage",
        MelreqError::Io(_) => "io",
        MelreqError::Divergence(_) => "divergence",
        MelreqError::Overload { .. } => "overload",
        MelreqError::Timeout(_) => "timeout",
        MelreqError::Analysis(_) => "analysis",
    }
}

fn error_body(status: u16, kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"status\":{status},\"kind\":\"{kind}\",\"message\":\"{}\",\"schema_version\":{SCHEMA_VERSION}}}}}",
        esc(message)
    )
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }
}

/// Install a SIGTERM handler that begins a graceful drain of every
/// server in this process (the event loop polls the flag). No-op off
/// Unix. The handler is process-global — the embedding tests use
/// [`ServerHandle::shutdown`] / `POST /shutdown` instead.
pub fn install_sigterm() {
    #[cfg(unix)]
    sig::install();
}

fn sigterm_received() -> bool {
    #[cfg(unix)]
    {
        sig::TERM.load(Ordering::SeqCst)
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Split a server response body into `(envelope_prefix, report_bytes)`:
/// everything before `"report":`, and the report JSON itself (the
/// envelope's trailing `}` removed). Shared by the golden tests and
/// `melreq client`.
pub fn split_envelope(body: &str) -> Option<(&str, &str)> {
    let marker = "\"report\":";
    let at = body.find(marker)?;
    let report = &body[at + marker.len()..];
    let report = report.strip_suffix('}')?;
    Some((&body[..at], report))
}
