//! # melreq-serve — the simulator as a service
//!
//! A dependency-free (std-only) threaded HTTP/1.1 front end over the
//! typed facade (`melreq_core::api`): POST a [`SimRequest`] body to
//! `/run` (exactly one policy) or `/compare` (one or more), and a
//! worker pool executes it through the same [`Session`] the CLI uses —
//! fork-per-policy warm-up sharing, the persistent checkpoint store,
//! and byte-deterministic reports. The `"report"` field of a `/run`
//! response is **bit-identical** to `melreq run --json` for the same
//! request (pinned by the golden service test); provenance that may
//! vary run-to-run (cache status, wall time, store statistics) lives in
//! the response envelope around it.
//!
//! Robustness model:
//!
//! * **Backpressure** — a bounded job queue; a full queue answers
//!   `429 Too Many Requests` with `Retry-After` instead of wedging.
//! * **Deadlines** — per-request wall-clock budgets (`timeout_ms`, or
//!   the server default); expired runs are cancelled cooperatively at a
//!   simulation epoch boundary and answer `504`.
//! * **Graceful drain** — SIGTERM (via [`install_sigterm`]), POST
//!   `/shutdown`, or [`ServerHandle::shutdown`] stop the acceptor,
//!   finish every queued job, and only then let the process exit.
//! * **Introspection** — `GET /healthz` and Prometheus text metrics on
//!   `GET /metrics` (request/response/rejection/timeout counters, queue
//!   depth, simulated cycles, checkpoint-store hit/miss statistics).

pub mod http;

use melreq_core::api::json::esc;
use melreq_core::api::{MelreqError, Session, SimRequest, SCHEMA_VERSION};
use melreq_core::experiment::RunControl;
use melreq_core::store::CheckpointStore;
use melreq_core::system::CancelToken;
use melreq_obs::metrics::{Counter, Gauge, MetricKind, Registry};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Largest accepted request body.
const MAX_BODY: usize = 1 << 20;

/// Per-connection socket timeout (parse and respond within this).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// `Retry-After` seconds suggested on queue overflow.
const RETRY_AFTER_S: u64 = 1;

/// Server configuration (`melreq serve` flags map 1:1 onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads executing simulations.
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it requests get 429.
    pub queue_cap: usize,
    /// Checkpoint-store directory; `None` runs storeless.
    pub store_dir: Option<PathBuf>,
    /// Default wall-clock budget for requests that set no `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Response-cache capacity in entries; 0 disables it (the default —
    /// repeats then exercise the checkpoint store instead).
    pub response_cache: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7700".to_string(),
            workers: 2,
            queue_cap: 16,
            store_dir: None,
            default_timeout_ms: None,
            response_cache: 0,
        }
    }
}

/// Which endpoint a queued job came from (metrics label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Run,
    Compare,
}

impl Endpoint {
    fn as_str(self) -> &'static str {
        match self {
            Endpoint::Run => "run",
            Endpoint::Compare => "compare",
        }
    }
}

struct Job {
    stream: TcpStream,
    req: SimRequest,
    deadline: Option<Instant>,
}

struct Metrics {
    registry: Registry,
    requests: Vec<(&'static str, Arc<Counter>)>,
    responses: Vec<(u16, Arc<Counter>)>,
    rejected: Arc<Counter>,
    timeouts: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    sim_cycles: Arc<Counter>,
    response_cache_hits: Arc<Counter>,
}

impl Metrics {
    fn new() -> Self {
        let registry = Registry::new();
        let requests = ["run", "compare", "healthz", "metrics", "shutdown"]
            .into_iter()
            .map(|ep| {
                let c = registry.counter(
                    &format!("melreq_requests_total{{endpoint=\"{ep}\"}}"),
                    "Requests received, by endpoint.",
                );
                (ep, c)
            })
            .collect();
        let responses = [200u16, 400, 404, 405, 429, 500, 504]
            .into_iter()
            .map(|code| {
                let c = registry.counter(
                    &format!("melreq_responses_total{{code=\"{code}\"}}"),
                    "Responses sent, by status code.",
                );
                (code, c)
            })
            .collect();
        let rejected = registry
            .counter("melreq_rejected_total", "Requests rejected by queue backpressure (429).");
        let timeouts = registry
            .counter("melreq_timeouts_total", "Requests that exceeded their wall-clock deadline.");
        let queue_depth =
            registry.gauge("melreq_queue_depth", "Jobs waiting in the bounded queue.");
        let sim_cycles = registry
            .counter("melreq_sim_cycles_total", "Simulated cycles executed on behalf of requests.");
        let response_cache_hits = registry.counter(
            "melreq_response_cache_hits_total",
            "Requests answered from the response cache.",
        );
        Metrics {
            registry,
            requests,
            responses,
            rejected,
            timeouts,
            queue_depth,
            sim_cycles,
            response_cache_hits,
        }
    }

    fn count_request(&self, endpoint: &str) {
        if let Some((_, c)) = self.requests.iter().find(|(ep, _)| *ep == endpoint) {
            c.inc();
        }
    }

    fn count_response(&self, status: u16) {
        if let Some((_, c)) = self.responses.iter().find(|(code, _)| *code == status) {
            c.inc();
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    session: Session,
    queue: Mutex<VecDeque<Job>>,
    cond: Condvar,
    draining: AtomicBool,
    metrics: Metrics,
    response_cache: Mutex<VecDeque<(u64, String)>>,
}

/// A running server: bound address plus the thread handles needed to
/// drain it. Dropping the handle without [`ServerHandle::join`] leaves
/// the threads running for the life of the process.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain: stop accepting, let workers finish the
    /// queue. Idempotent; returns immediately.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
    }

    /// Wait for the acceptor and every worker to exit (the queue is
    /// fully drained once this returns).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Bind, spawn the worker pool and the acceptor, and return.
pub fn start(cfg: ServeConfig) -> Result<ServerHandle, MelreqError> {
    let session = match &cfg.store_dir {
        Some(dir) => {
            let store = CheckpointStore::open(dir)
                .map_err(|e| MelreqError::Io(format!("open store {}: {e}", dir.display())))?;
            Session::with_store(Arc::new(store))
        }
        None => Session::new(),
    };
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| MelreqError::Io(format!("bind {}: {e}", cfg.addr)))?;
    let addr = listener.local_addr().map_err(|e| MelreqError::Io(format!("local_addr: {e}")))?;
    listener.set_nonblocking(true).map_err(|e| MelreqError::Io(format!("set_nonblocking: {e}")))?;

    type StatProbe = fn(&melreq_core::StoreStats) -> u64;
    let metrics = Metrics::new();
    if let Some(store) = session.store() {
        let probes: [(&str, StatProbe); 4] = [
            ("melreq_store_warmup_hits_total", |s| s.warmup_hits),
            ("melreq_store_warmup_misses_total", |s| s.warmup_misses),
            ("melreq_store_profile_hits_total", |s| s.profile_hits),
            ("melreq_store_profile_misses_total", |s| s.profile_misses),
        ];
        for (name, probe) in probes {
            let store = store.clone();
            #[allow(clippy::cast_precision_loss)]
            metrics.registry.func(
                name,
                "Checkpoint-store activity since server start.",
                MetricKind::Counter,
                move || probe(&store.stats()) as f64,
            );
        }
    }

    let shared = Arc::new(Shared {
        cfg: cfg.clone(),
        session,
        queue: Mutex::new(VecDeque::new()),
        cond: Condvar::new(),
        draining: AtomicBool::new(false),
        metrics,
        response_cache: Mutex::new(VecDeque::new()),
    });

    let workers = (0..cfg.workers.max(1))
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("melreq-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();
    let acceptor = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("melreq-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn acceptor thread")
    };
    Ok(ServerHandle { addr, shared, acceptor, workers })
}

/// Run a server in the foreground until it drains (SIGTERM, or POST
/// `/shutdown`). Prints the listening line up front; returns a final
/// summary for the CLI to print.
pub fn serve_forever(cfg: ServeConfig) -> Result<String, MelreqError> {
    install_sigterm();
    let store_note = match &cfg.store_dir {
        Some(dir) => format!("store {}", dir.display()),
        None => "no store".to_string(),
    };
    let handle = start(cfg.clone())?;
    println!(
        "melreq-serve listening on {} ({} workers, queue {}, {})",
        handle.addr(),
        cfg.workers.max(1),
        cfg.queue_cap,
        store_note
    );
    handle.join();
    Ok("melreq-serve drained cleanly".to_string())
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) || sigterm_received() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
    // Drain: wake every worker so they can observe the flag.
    shared.draining.store(true, Ordering::SeqCst);
    shared.cond.notify_all();
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let request = match http::read_request(&mut stream, MAX_BODY) {
        Ok(r) => r,
        Err(e) => {
            respond_error(&mut stream, shared, &MelreqError::Usage(format!("bad request: {e}")));
            return;
        }
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            shared.metrics.count_request("healthz");
            let body = format!(
                "{{\"status\":\"ok\",\"schema_version\":{SCHEMA_VERSION},\"queue_depth\":{}}}",
                shared.queue.lock().expect("queue poisoned").len()
            );
            respond(&mut stream, shared, 200, "application/json", &[], &body);
        }
        ("GET", "/metrics") => {
            shared.metrics.count_request("metrics");
            let body = shared.metrics.registry.render();
            respond(&mut stream, shared, 200, "text/plain; version=0.0.4", &[], &body);
        }
        ("POST", "/shutdown") => {
            shared.metrics.count_request("shutdown");
            shared.draining.store(true, Ordering::SeqCst);
            shared.cond.notify_all();
            respond(&mut stream, shared, 200, "application/json", &[], "{\"status\":\"draining\"}");
        }
        ("POST", path @ ("/run" | "/compare")) => {
            let endpoint = if path == "/run" { Endpoint::Run } else { Endpoint::Compare };
            shared.metrics.count_request(endpoint.as_str());
            match parse_sim_request(&request.body, endpoint) {
                Ok(req) => enqueue(stream, req, shared),
                Err(e) => respond_error(&mut stream, shared, &e),
            }
        }
        (_, "/healthz" | "/metrics" | "/shutdown" | "/run" | "/compare") => {
            respond(
                &mut stream,
                shared,
                405,
                "application/json",
                &[],
                &error_body(405, "usage", "method not allowed"),
            );
        }
        (_, path) => {
            let body = error_body(404, "usage", &format!("unknown endpoint '{path}'"));
            respond(&mut stream, shared, 404, "application/json", &[], &body);
        }
    }
}

fn parse_sim_request(body: &str, endpoint: Endpoint) -> Result<SimRequest, MelreqError> {
    let req = SimRequest::from_json(body)?;
    if endpoint == Endpoint::Run && req.policies.len() != 1 {
        return Err(MelreqError::Usage(format!(
            "/run takes exactly one policy (got {}); POST policy sets to /compare",
            req.policies.len()
        )));
    }
    Ok(req)
}

fn enqueue(mut stream: TcpStream, req: SimRequest, shared: &Arc<Shared>) {
    // Response cache (opt-in): answer repeats without touching the pool.
    if shared.cfg.response_cache > 0 {
        let key = req.request_key();
        let cache = shared.response_cache.lock().expect("response cache poisoned");
        if let Some((_, report)) = cache.iter().find(|(k, _)| *k == key) {
            let body = envelope(report, "response", shared);
            drop(cache);
            shared.metrics.response_cache_hits.inc();
            respond(&mut stream, shared, 200, "application/json", &[], &body);
            return;
        }
    }

    let timeout_ms = req.timeout_ms.or(shared.cfg.default_timeout_ms);
    let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let job = Job { stream, req, deadline };

    let mut queue = shared.queue.lock().expect("queue poisoned");
    if queue.len() >= shared.cfg.queue_cap || shared.draining.load(Ordering::SeqCst) {
        drop(queue);
        let mut stream = job.stream;
        shared.metrics.rejected.inc();
        let err = MelreqError::Overload { retry_after_s: RETRY_AFTER_S };
        let body = error_body(err.http_status(), kind(&err), &err.to_string());
        respond(
            &mut stream,
            shared,
            err.http_status(),
            "application/json",
            &[("Retry-After", RETRY_AFTER_S.to_string())],
            &body,
        );
        return;
    }
    queue.push_back(job);
    shared.metrics.queue_depth.set(i64::try_from(queue.len()).unwrap_or(i64::MAX));
    drop(queue);
    shared.cond.notify_one();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.metrics.queue_depth.set(i64::try_from(queue.len()).unwrap_or(i64::MAX));
                    break Some(job);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .cond
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        let Some(job) = job else { return };
        process(job, shared);
    }
}

fn process(job: Job, shared: &Arc<Shared>) {
    let Job { mut stream, req, deadline } = job;
    // A deadline that expired while the job sat in the queue is still a
    // timeout — the simulation is simply never started.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        let err = MelreqError::Timeout(
            "request deadline expired while queued; the run was not started".to_string(),
        );
        respond_error(&mut stream, shared, &err);
        return;
    }

    let ctl = RunControl {
        cancel: deadline.map(CancelToken::with_deadline),
        max_cycles: None,
        threads: None,
    };
    match shared.session.run(&req, &ctl) {
        Ok(report) => {
            let mut cycles = 0u64;
            for p in &report.policies {
                cycles = cycles.saturating_add(p.sim_cycles);
            }
            shared.metrics.sim_cycles.add(cycles);
            let cache_status = if report.all_warm() {
                "warm"
            } else if report.any_warm() {
                "partial"
            } else {
                "cold"
            };
            let report_json = report.to_json();
            if shared.cfg.response_cache > 0 {
                let key = req.request_key();
                let mut cache = shared.response_cache.lock().expect("response cache poisoned");
                if !cache.iter().any(|(k, _)| *k == key) {
                    cache.push_back((key, report_json.clone()));
                    while cache.len() > shared.cfg.response_cache {
                        cache.pop_front();
                    }
                }
            }
            let body = envelope(&report_json, cache_status, shared);
            respond(&mut stream, shared, 200, "application/json", &[], &body);
        }
        Err(err) => respond_error(&mut stream, shared, &err),
    }
}

/// The response envelope: provenance fields first, the deterministic
/// report verbatim last — `"report":` up to the final `}` is exactly
/// [`melreq_core::api::SimReport::to_json`]'s bytes.
fn envelope(report_json: &str, cache: &str, shared: &Arc<Shared>) -> String {
    let store = match shared.session.store() {
        Some(store) => {
            let s = store.stats();
            format!(
                "{{\"warmup_hits\":{},\"warmup_misses\":{},\"profile_hits\":{},\"profile_misses\":{}}}",
                s.warmup_hits, s.warmup_misses, s.profile_hits, s.profile_misses
            )
        }
        None => "null".to_string(),
    };
    format!("{{\"cache\":\"{cache}\",\"store\":{store},\"report\":{report_json}}}")
}

fn kind(err: &MelreqError) -> &'static str {
    match err {
        MelreqError::Usage(_) => "usage",
        MelreqError::Io(_) => "io",
        MelreqError::Divergence(_) => "divergence",
        MelreqError::Overload { .. } => "overload",
        MelreqError::Timeout(_) => "timeout",
        MelreqError::Analysis(_) => "analysis",
    }
}

fn error_body(status: u16, kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":{{\"status\":{status},\"kind\":\"{kind}\",\"message\":\"{}\",\"schema_version\":{SCHEMA_VERSION}}}}}",
        esc(message)
    )
}

fn respond_error(stream: &mut TcpStream, shared: &Arc<Shared>, err: &MelreqError) {
    if matches!(err, MelreqError::Timeout(_)) {
        shared.metrics.timeouts.inc();
    }
    let status = err.http_status();
    let body = error_body(status, kind(err), &err.to_string());
    respond(stream, shared, status, "application/json", &[], &body);
}

fn respond(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) {
    shared.metrics.count_response(status);
    // The client may already be gone; nothing useful to do about it.
    let _ = http::write_response(stream, status, content_type, extra_headers, body);
}

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }
}

/// Install a SIGTERM handler that begins a graceful drain of every
/// server in this process (the acceptor polls the flag). No-op off
/// Unix. The handler is process-global — the embedding tests use
/// [`ServerHandle::shutdown`] / `POST /shutdown` instead.
pub fn install_sigterm() {
    #[cfg(unix)]
    sig::install();
}

fn sigterm_received() -> bool {
    #[cfg(unix)]
    {
        sig::TERM.load(Ordering::SeqCst)
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Split a server response body into `(envelope_prefix, report_bytes)`:
/// everything before `"report":`, and the report JSON itself (the
/// envelope's trailing `}` removed). Shared by the golden tests and
/// `melreq client`.
pub fn split_envelope(body: &str) -> Option<(&str, &str)> {
    let marker = "\"report\":";
    let at = body.find(marker)?;
    let report = &body[at + marker.len()..];
    let report = report.strip_suffix('}')?;
    Some((&body[..at], report))
}
