//! A deliberately small HTTP/1.1 codec over `std::net::TcpStream` —
//! request parsing and response writing for the server, plus a blocking
//! one-shot client used by `melreq client` and the service tests.
//!
//! Scope: `Content-Length` bodies only (no chunked encoding), one
//! request per connection (`Connection: close` on every response),
//! bounded header and body sizes. That is exactly the profile the
//! service speaks, and keeping the codec this small is what lets the
//! workspace stay dependency-free.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted head (request line + headers), in bytes.
const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path only; queries are not used by this service).
    pub path: String,
    /// Decoded body (empty when there was none).
    pub body: String,
}

/// Read one request from `stream`. `max_body` bounds the declared
/// `Content-Length`; oversized or malformed requests are errors.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err("request head too large".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-utf8 head".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line missing target")?.to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad content-length '{}'", value.trim()))?;
            }
        }
    }
    if content_length > max_body {
        return Err(format!("body of {content_length} bytes exceeds the {max_body}-byte cap"));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| "non-utf8 body".to_string())?;
    Ok(HttpRequest { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Standard reason phrase for the statuses this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one complete response and close the write side. Errors are
/// returned (the caller usually just counts them — the client is gone).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One blocking HTTP exchange: connect to `addr`, send `method path`
/// with an optional JSON body, return `(status, body)`.
pub fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| format!("set timeout: {e}"))?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| format!("set timeout: {e}"))?;

    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| format!("write: {e}"))?;
    stream.write_all(body.as_bytes()).map_err(|e| format!("write: {e}"))?;
    stream.flush().map_err(|e| format!("flush: {e}"))?;

    let mut response = Vec::new();
    stream.read_to_end(&mut response).map_err(|e| format!("read: {e}"))?;
    let head_end =
        find_head_end(&response).ok_or_else(|| "response without header terminator".to_string())?;
    let head = std::str::from_utf8(&response[..head_end])
        .map_err(|_| "non-utf8 response head".to_string())?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line in {head:?}"))?;
    let body = String::from_utf8(response[head_end + 4..].to_vec())
        .map_err(|_| "non-utf8 response body".to_string())?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trips_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/run");
            assert_eq!(req.body, "{\"x\":1}");
            write_response(&mut stream, 200, "application/json", &[], "{\"ok\":true}").unwrap();
        });
        let (status, body) =
            exchange(&addr.to_string(), "POST", "/run", Some("{\"x\":1}"), Duration::from_secs(5))
                .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream, 4).unwrap_err().contains("cap"));
        });
        let _ = exchange(
            &addr.to_string(),
            "POST",
            "/run",
            Some("too large for the cap"),
            Duration::from_secs(5),
        );
        server.join().unwrap();
    }

    #[test]
    fn reasons_cover_emitted_statuses() {
        for status in [200, 400, 404, 405, 429, 500, 503, 504] {
            assert_ne!(reason(status), "Unknown");
        }
    }
}
