//! A deliberately small HTTP/1.1 codec — an incremental, pure request
//! parser for the server's event loop, response rendering with
//! keep-alive semantics, and a blocking keep-alive client
//! ([`ClientConn`]) used by `melreq client`, `melreq loadbench`, and
//! the service tests.
//!
//! Scope: `Content-Length` bodies only (no chunked encoding), bounded
//! header and body sizes, `Connection: close` honored in both
//! directions. That is exactly the profile the service speaks, and
//! keeping the codec this small is what lets the workspace stay
//! dependency-free.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Longest accepted head (request line + headers), in bytes.
const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path only; queries are not used by this service).
    pub path: String,
    /// Decoded body (empty when there was none).
    pub body: String,
    /// The request carried `Connection: close` — the server answers it
    /// and then closes instead of keeping the connection alive.
    pub close: bool,
}

/// Try to parse one complete request from the front of `buf`.
///
/// * `Ok(None)` — the buffer holds only a partial request; read more.
/// * `Ok(Some((req, n)))` — a full request occupying the first `n`
///   bytes (the caller consumes them; pipelined successors may follow).
/// * `Err(_)` — the bytes can never become a valid request (oversized,
///   malformed); the connection should answer 400 and close.
pub fn parse_request(buf: &[u8], max_body: usize) -> Result<Option<(HttpRequest, usize)>, String> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err("request head too large".into());
        }
        return Ok(None);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-utf8 head".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line missing target")?.to_string();

    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad content-length '{}'", value.trim()))?;
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    if content_length > max_body {
        return Err(format!("body of {content_length} bytes exceeds the {max_body}-byte cap"));
    }

    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = String::from_utf8(buf[head_end + 4..total].to_vec())
        .map_err(|_| "non-utf8 body".to_string())?;
    Ok(Some((HttpRequest { method, path, body, close }, total)))
}

/// Read one request from `stream` (blocking). `max_body` bounds the
/// declared `Content-Length`; oversized or malformed requests are
/// errors. Bytes past the first request are discarded — callers that
/// need pipelining use [`parse_request`] on their own buffer.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    loop {
        if let Some((req, _)) = parse_request(&buf, max_body)? {
            return Ok(req);
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Standard reason phrase for the statuses this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Render one complete response. `close` controls the `Connection`
/// header: keep-alive responses leave the connection open for the next
/// pipelined request, `close` announces the server will hang up.
pub fn response_bytes(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
    close: bool,
) -> Vec<u8> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Write one complete response (blocking helper over
/// [`response_bytes`]). Errors are returned (the caller usually just
/// counts them — the client is gone).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    stream.write_all(&response_bytes(status, content_type, extra_headers, body, close))?;
    stream.flush()
}

/// A blocking keep-alive HTTP/1.1 client connection. Requests are
/// serial: send one, read its `Content-Length`-framed response, repeat
/// on the same socket. The final request of a session should pass
/// `close = true` so the server tears the connection down eagerly.
pub struct ClientConn {
    stream: TcpStream,
    addr: String,
    // Bytes read past the previous response's body (possible when the
    // server batches writes); consumed before touching the socket.
    carry: Vec<u8>,
}

impl ClientConn {
    /// Connect to `addr` with `timeout` as both read and write timeout.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_read_timeout(Some(timeout)).map_err(|e| format!("set timeout: {e}"))?;
        stream.set_write_timeout(Some(timeout)).map_err(|e| format!("set timeout: {e}"))?;
        Ok(ClientConn { stream, addr: addr.to_string(), carry: Vec::new() })
    }

    /// One request/response exchange on this connection. `close`
    /// controls the request's `Connection` header; after a `close`
    /// exchange the connection is spent.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        close: bool,
    ) -> Result<(u16, String), String> {
        let body = body.unwrap_or("");
        let connection = if close { "close" } else { "keep-alive" };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
            self.addr,
            body.len()
        );
        self.stream.write_all(head.as_bytes()).map_err(|e| format!("write: {e}"))?;
        self.stream.write_all(body.as_bytes()).map_err(|e| format!("write: {e}"))?;
        self.stream.flush().map_err(|e| format!("flush: {e}"))?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<(u16, String), String> {
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            let n = self.stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-response".into());
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| "non-utf8 response head".to_string())?;
        let status = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| format!("malformed status line in {head:?}"))?;
        let mut content_length: Option<usize> = None;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse::<usize>().ok();
                }
            }
        }
        let content_length =
            content_length.ok_or_else(|| "response without content-length".to_string())?;
        let body_start = head_end + 4;
        while buf.len() < body_start + content_length {
            let n = self.stream.read(&mut chunk).map_err(|e| format!("read body: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-body".into());
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        self.carry = buf.split_off(body_start + content_length);
        let body = String::from_utf8(buf[body_start..].to_vec())
            .map_err(|_| "non-utf8 response body".to_string())?;
        Ok((status, body))
    }
}

/// One blocking HTTP exchange: connect to `addr`, send `method path`
/// with `Connection: close`, return `(status, body)`.
pub fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, String), String> {
    ClientConn::connect(addr, timeout)?.request(method, path, body, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trips_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/run");
            assert_eq!(req.body, "{\"x\":1}");
            assert!(req.close, "exchange sends Connection: close");
            write_response(&mut stream, 200, "application/json", &[], "{\"ok\":true}", true)
                .unwrap();
        });
        let (status, body) =
            exchange(&addr.to_string(), "POST", "/run", Some("{\"x\":1}"), Duration::from_secs(5))
                .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn client_conn_reuses_one_socket_for_many_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Exactly one accept: both requests must arrive on it.
            let (mut stream, _) = listener.accept().unwrap();
            let first = read_request(&mut stream, 1024).unwrap();
            assert!(!first.close);
            write_response(&mut stream, 200, "application/json", &[], "1", false).unwrap();
            let second = read_request(&mut stream, 1024).unwrap();
            assert!(second.close);
            write_response(&mut stream, 200, "application/json", &[], "22", true).unwrap();
        });
        let mut conn = ClientConn::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        assert_eq!(conn.request("GET", "/a", None, false).unwrap(), (200, "1".to_string()));
        assert_eq!(conn.request("GET", "/b", None, true).unwrap(), (200, "22".to_string()));
        server.join().unwrap();
    }

    #[test]
    fn parse_request_handles_partial_pipelined_and_malformed_input() {
        let one = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut two = one.to_vec();
        two.extend_from_slice(b"POST /run HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");

        // Partial: no terminator yet.
        assert!(parse_request(&one[..10], 1024).unwrap().is_none());
        // Complete head, body still missing.
        let partial_body = &two[one.len()..two.len() - 1];
        assert!(parse_request(partial_body, 1024).unwrap().is_none());
        // Two pipelined requests parse front-to-back.
        let (first, n) = parse_request(&two, 1024).unwrap().unwrap();
        assert_eq!((first.method.as_str(), first.path.as_str()), ("GET", "/healthz"));
        assert_eq!(n, one.len());
        let (second, m) = parse_request(&two[n..], 1024).unwrap().unwrap();
        assert_eq!((second.method.as_str(), second.body.as_str()), ("POST", "{}"));
        assert_eq!(n + m, two.len());
        // Oversized declared body is a hard error.
        assert!(parse_request(b"POST /run HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 4)
            .unwrap_err()
            .contains("cap"));
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream, 4).unwrap_err().contains("cap"));
        });
        let _ = exchange(
            &addr.to_string(),
            "POST",
            "/run",
            Some("too large for the cap"),
            Duration::from_secs(5),
        );
        server.join().unwrap();
    }

    #[test]
    fn reasons_cover_emitted_statuses() {
        for status in [200, 400, 404, 405, 429, 500, 503, 504] {
            assert_ne!(reason(status), "Unknown");
        }
    }
}
