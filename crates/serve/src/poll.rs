//! A dependency-free readiness poller for the serve event loop.
//!
//! On Linux this wraps `epoll` through raw `extern "C"` declarations
//! (level-triggered — the event loop reads/writes until `WouldBlock`,
//! so level semantics are the simple, correct choice). Other Unixes
//! fall back to `poll(2)` over the registered set; non-Unix targets get
//! a stub that fails at construction (the threaded service paths the
//! tests exercise are all Unix).
//!
//! The poller itself is single-threaded — it lives on the event-loop
//! thread. Cross-thread wake-up goes through an anonymous pipe
//! ([`std::io::pipe`]): workers hold a cloneable [`WakeHandle`] and
//! write one byte; the read end is registered in the poller like any
//! other fd, so a wake is just another readiness event.

use std::io;
use std::io::{PipeReader, PipeWriter, Read, Write};
use std::sync::Arc;

#[cfg(unix)]
use std::os::fd::{AsRawFd, RawFd};
#[cfg(not(unix))]
pub type RawFd = i32;

/// Name of the compiled poller backend (surfaced by `/buildinfo`).
pub fn backend_name() -> &'static str {
    if cfg!(target_os = "linux") {
        "epoll"
    } else if cfg!(unix) {
        "poll"
    } else {
        "unsupported"
    }
}

/// What the event loop wants to hear about for a registered fd. Read
/// interest is implicit — every registration listens for readability;
/// write interest is added only while a connection has unflushed
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readability (and hangup) only.
    Read,
    /// Readability plus writability.
    ReadWrite,
}

/// One readiness event, translated to poller-independent flags.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Data (or EOF) can be read without blocking.
    pub readable: bool,
    /// The socket's send buffer has room again.
    pub writable: bool,
    /// Peer hung up or the fd errored; the connection is dead.
    pub hangup: bool,
}

/// Cross-thread wake-up handle: writing a byte to the pipe makes the
/// poller's next `wait` return with the waker token readable.
#[derive(Clone)]
pub struct WakeHandle(Arc<PipeWriter>);

impl WakeHandle {
    /// Wake the poller. Best-effort: a full pipe already guarantees a
    /// pending wake, and a closed pipe means the loop is gone.
    #[allow(clippy::unused_io_amount)]
    pub fn wake(&self) {
        // Deliberately `write`, not `write_all`: a full pipe must not
        // block a worker — pending bytes already mean a wake is due.
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// The read end of the wake pipe, owned by the event loop. After a
/// readiness event on the waker token, [`Waker::drain`] consumes the
/// pending bytes (coalescing any number of wakes).
pub struct Waker {
    rx: PipeReader,
}

impl Waker {
    /// The fd to register in the poller.
    #[cfg(unix)]
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Non-Unix placeholder (the stub poller never gets this far).
    #[cfg(not(unix))]
    pub fn fd(&self) -> RawFd {
        -1
    }

    /// Consume pending wake bytes. A single bounded read suffices: a
    /// pipe with data never blocks to fill the buffer, and any bytes
    /// left behind simply keep the fd readable for the next `wait`.
    #[allow(clippy::unused_io_amount)]
    pub fn drain(&mut self) {
        let mut buf = [0u8; 256];
        let _ = self.rx.read(&mut buf);
    }
}

/// Create the wake pipe: the loop-side [`Waker`] and a cloneable
/// [`WakeHandle`] for worker threads.
pub fn wake_pair() -> io::Result<(Waker, WakeHandle)> {
    let (rx, tx) = std::io::pipe()?;
    Ok((Waker { rx }, WakeHandle(Arc::new(tx))))
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    // The kernel ABI struct; packed on x86-64 (no padding between the
    // 32-bit event mask and the 64-bit payload).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn mask(interest: Interest) -> u32 {
        match interest {
            Interest::Read => EPOLLIN | EPOLLRDHUP,
            Interest::ReadWrite => EPOLLIN | EPOLLRDHUP | EPOLLOUT,
        }
    }

    /// epoll-backed poller (Linux).
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask(interest), data: token };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &raw mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &raw mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 128];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    raw.as_mut_ptr(),
                    i32::try_from(raw.len()).expect("event buffer fits i32"),
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in raw.iter().take(n.unsigned_abs() as usize) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // nfds_t is `unsigned int` on the BSD family this fallback
        // targets (macOS, the BSDs); Linux uses the epoll backend.
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    /// poll(2)-backed fallback for non-Linux Unix.
    pub struct Poller {
        registered: Vec<(RawFd, u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Poller { registered: Vec::new() })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.registered.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered"));
            }
            self.registered.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match self.registered.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.registered.len();
            self.registered.retain(|(f, _, _)| *f != fd);
            if self.registered.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: match interest {
                        Interest::Read => POLLIN,
                        Interest::ReadWrite => POLLIN | POLLOUT,
                    },
                    revents: 0,
                })
                .collect();
            let n = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    u32::try_from(fds.len()).expect("fd set fits u32"),
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (slot, (_, token, _)) in fds.iter().zip(&self.registered) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: bits & POLLIN != 0,
                    writable: bits & POLLOUT != 0,
                    hangup: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Event, Interest};
    use std::io;

    pub type RawFd = i32;

    /// Stub: the event-loop service requires a Unix readiness API.
    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "melreq-serve requires epoll/poll (Unix)",
            ))
        }

        pub fn add(&mut self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn modify(&mut self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn remove(&mut self, _fd: RawFd) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn wait(&mut self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

pub use sys::Poller;

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_reports_listener_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::Read).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no connection yet: {events:?}");

        let _client = TcpStream::connect(addr).unwrap();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");
    }

    #[test]
    fn waker_wakes_and_drains() {
        let (mut waker, handle) = wake_pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(waker.fd(), 1, Interest::Read).unwrap();

        let mut events = Vec::new();
        handle.wake();
        handle.wake();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable), "{events:?}");
        waker.drain();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "wake bytes not drained: {events:?}");
    }

    #[test]
    fn write_interest_fires_on_connected_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        drop(server);

        let mut poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), 3, Interest::ReadWrite).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 2_000).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable), "{events:?}");
        poller.remove(client.as_raw_fd()).unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }
}
