//! Black-box service tests over real sockets: backpressure (429 +
//! Retry-After semantics without wedging the pool), wall-clock deadlines
//! (504 at an epoch boundary), sustained concurrency across the worker
//! pool, keep-alive + pipelining on the event loop, request coalescing,
//! the LRU response cache, idle-connection timeouts, request validation
//! (schema version, /run arity), and graceful drain. Every server binds
//! port 0; nothing here touches SIGTERM — the in-process drain paths
//! (`/shutdown`, `ServerHandle::shutdown`) cover the same code the
//! signal handler flips.

use melreq_core::api::{PolicyKind, SimRequest, SCHEMA_VERSION};
use melreq_core::experiment::ExperimentOptions;
use melreq_serve::{http, split_envelope, start, ServeConfig, ServerHandle};
use std::time::Duration;

const EXCHANGE_TIMEOUT: Duration = Duration::from_secs(300);

fn serve(workers: usize, queue_cap: usize) -> ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap,
        store_dir: None,
        ..ServeConfig::default()
    })
    .expect("start server")
}

/// Scrape `/metrics` and return the value of a single-sample family.
fn metric_value(addr: &str, name: &str) -> f64 {
    let (status, text) =
        http::exchange(addr, "GET", "/metrics", None, EXCHANGE_TIMEOUT).expect("metrics");
    assert_eq!(status, 200);
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse::<f64>().ok())
        .unwrap_or_else(|| panic!("metric {name} not found in:\n{text}"))
}

fn run_body(mix: &str, opts: ExperimentOptions) -> String {
    SimRequest::new(mix)
        .policy(PolicyKind::parse("me-lreq").expect("policy token"))
        .opts(opts)
        .to_json()
}

/// A request heavy enough to hold a worker for a while on any host.
fn slow_opts() -> ExperimentOptions {
    ExperimentOptions {
        instructions: 120_000,
        warmup: 30_000,
        profile_instructions: 10_000,
        ..ExperimentOptions::default()
    }
}

fn post_run(addr: &str, body: &str) -> (u16, String) {
    http::exchange(addr, "POST", "/run", Some(body), EXCHANGE_TIMEOUT).expect("POST /run")
}

#[test]
fn queue_overflow_sheds_429_and_the_server_recovers() {
    let handle = serve(1, 1);
    let addr = handle.addr().to_string();

    // Occupy the single worker with a slow run…
    let slow = {
        let addr = addr.clone();
        std::thread::spawn(move || post_run(&addr, &run_body("2MEM-1", slow_opts())))
    };
    std::thread::sleep(Duration::from_millis(400));

    // …then burst past the 1-slot queue with four DISTINCT requests
    // (distinct cycle budgets — identical ones would coalesce instead
    // of overflowing). At most one follower fits.
    let followers: Vec<_> = (0..4u64)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let body = SimRequest::new("2MEM-1")
                    .policy(PolicyKind::parse("me-lreq").expect("policy token"))
                    .opts(ExperimentOptions::quick())
                    .max_cycles(1_000_000_000 + i)
                    .to_json();
                post_run(&addr, &body)
            })
        })
        .collect();

    let mut ok = 0;
    let mut shed = 0;
    for f in followers {
        let (status, body) = f.join().expect("follower thread");
        match status {
            200 => ok += 1,
            429 => {
                shed += 1;
                assert!(body.contains("\"kind\":\"overload\""), "429 body: {body}");
                assert!(body.contains("retry after"), "429 names the backoff: {body}");
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(ok + shed, 4);
    assert!(shed >= 1, "a 1-slot queue must shed part of a 4-request burst");
    assert!(ok >= 1, "the queued follower must still complete");

    let (status, _) = slow.join().expect("slow thread");
    assert_eq!(status, 200, "the in-flight run finishes despite the burst");

    // Not wedged: health and a fresh run still work.
    let (status, body) =
        http::exchange(&addr, "GET", "/healthz", None, EXCHANGE_TIMEOUT).expect("healthz");
    assert_eq!(status, 200, "healthz after burst: {body}");
    let (status, _) = post_run(&addr, &run_body("2MEM-1", ExperimentOptions::quick()));
    assert_eq!(status, 200, "pool serves again after shedding");

    handle.shutdown();
    handle.join();
}

#[test]
fn expired_wall_clock_budget_returns_504() {
    let handle = serve(1, 4);
    let addr = handle.addr().to_string();

    let body = SimRequest::new("2MEM-1")
        .policy(PolicyKind::parse("me-lreq").expect("policy token"))
        .opts(slow_opts())
        .timeout_ms(1)
        .to_json();
    let (status, resp) = post_run(&addr, &body);
    assert_eq!(status, 504, "1ms budget must time out: {resp}");
    assert!(resp.contains("\"kind\":\"timeout\""), "504 body: {resp}");

    // The worker survives the cancellation.
    let (status, resp) = post_run(&addr, &run_body("2MEM-1", ExperimentOptions::quick()));
    assert_eq!(status, 200, "run after a timeout: {resp}");

    handle.shutdown();
    handle.join();
}

#[test]
fn worker_pool_sustains_concurrent_distinct_mixes() {
    let handle = serve(4, 8);
    let addr = handle.addr().to_string();

    let mixes = ["2MEM-1", "2MEM-2", "2MIX-1", "2MIX-2"];
    let threads: Vec<_> = mixes
        .iter()
        .map(|mix| {
            let addr = addr.clone();
            let mix = (*mix).to_string();
            std::thread::spawn(move || {
                (mix.clone(), post_run(&addr, &run_body(&mix, ExperimentOptions::quick())))
            })
        })
        .collect();
    for t in threads {
        let (mix, (status, body)) = t.join().expect("run thread");
        assert_eq!(status, 200, "{mix}: {body}");
        let (_, report) = split_envelope(&body).expect("enveloped response");
        assert!(
            report.contains(&format!("\"mix\":\"{mix}\"")),
            "{mix} report names its mix: {report}"
        );
    }

    let (status, metrics) =
        http::exchange(&addr, "GET", "/metrics", None, EXCHANGE_TIMEOUT).expect("metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("melreq_requests_total{endpoint=\"run\"} 4"), "metrics: {metrics}");
    assert!(metrics.contains("melreq_responses_total{code=\"200\"}"), "metrics: {metrics}");

    handle.shutdown();
    handle.join();
}

#[test]
fn invalid_requests_are_rejected_up_front() {
    let handle = serve(1, 4);
    let addr = handle.addr().to_string();

    // Stale client schema: refused before any simulation runs.
    let stale = run_body("2MEM-1", ExperimentOptions::quick())
        .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":999");
    let (status, body) = post_run(&addr, &stale);
    assert_eq!(status, 400, "schema mismatch: {body}");
    assert!(body.contains("\"kind\":\"usage\""), "400 body: {body}");
    assert!(body.contains("schema"), "the error names the schema: {body}");

    // /run is single-policy; policy sets belong on /compare.
    let multi = SimRequest::new("2MEM-1")
        .policies(vec![
            PolicyKind::parse("hf-rf").expect("policy token"),
            PolicyKind::parse("me-lreq").expect("policy token"),
        ])
        .opts(ExperimentOptions::quick())
        .to_json();
    let (status, body) = post_run(&addr, &multi);
    assert_eq!(status, 400, "/run with two policies: {body}");
    assert!(body.contains("exactly one policy"), "400 body: {body}");

    // Unknown endpoint and wrong method keep their HTTP semantics.
    let (status, _) =
        http::exchange(&addr, "GET", "/nope", None, EXCHANGE_TIMEOUT).expect("GET /nope");
    assert_eq!(status, 404);
    let (status, _) =
        http::exchange(&addr, "GET", "/run", None, EXCHANGE_TIMEOUT).expect("GET /run");
    assert_eq!(status, 405);

    handle.shutdown();
    handle.join();
}

#[test]
fn policies_endpoint_lists_the_registry_and_unknown_names_suggest() {
    let handle = serve(1, 4);
    let addr = handle.addr().to_string();

    // GET /policies: the full registry, versioned, one descriptor per
    // registered scheme with its parameter specs.
    let (status, body) =
        http::exchange(&addr, "GET", "/policies", None, EXCHANGE_TIMEOUT).expect("GET /policies");
    assert_eq!(status, 200, "/policies: {body}");
    assert!(body.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},\"policies\":[")));
    for id in ["hf-rf", "me-lreq", "bliss", "tcm", "fq", "stf"] {
        assert!(body.contains(&format!("\"id\":\"{id}\"")), "missing {id}: {body}");
    }
    assert!(body.contains("\"params\""), "descriptors carry parameter specs: {body}");
    assert!(body.contains("\"threshold\""), "BLISS params missing: {body}");
    let (status, _) =
        http::exchange(&addr, "POST", "/policies", None, EXCHANGE_TIMEOUT).expect("POST");
    assert_eq!(status, 405, "/policies is GET-only");

    // An unknown policy name in a request 400s with a suggestion.
    let bad = run_body("2MEM-1", ExperimentOptions::quick()).replace("me-lreq", "me-lerq");
    let (status, body) = post_run(&addr, &bad);
    assert_eq!(status, 400, "unknown policy: {body}");
    assert!(body.contains("did you mean"), "nearest-name suggestion missing: {body}");

    // A parameterized zoo policy resolves and runs end to end.
    let zoo = SimRequest::new("2MEM-1")
        .policy(PolicyKind::parse("bliss(threshold=2)").expect("policy token"))
        .opts(ExperimentOptions::quick())
        .to_json();
    let (status, body) = post_run(&addr, &zoo);
    assert_eq!(status, 200, "bliss run: {body}");
    assert!(body.contains("\"policy\":\"BLISS\""), "report names the policy: {body}");
    assert!(body.contains("\"harmonic_speedup\""), "fairness metrics missing: {body}");
    assert!(body.contains("\"max_slowdown\""), "fairness metrics missing: {body}");

    handle.shutdown();
    handle.join();
}

#[test]
fn post_shutdown_drains_in_flight_work_then_exits() {
    let handle = serve(1, 4);
    let addr = handle.addr().to_string();

    // Two requests in flight: one running, one queued.
    let in_flight: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                post_run(&addr, &run_body("2MEM-1", ExperimentOptions::quick()))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    let (status, body) =
        http::exchange(&addr, "POST", "/shutdown", None, EXCHANGE_TIMEOUT).expect("shutdown");
    assert_eq!(status, 200, "shutdown: {body}");
    assert!(body.contains("draining"), "shutdown body: {body}");

    // Graceful: everything already accepted still completes.
    for t in in_flight {
        let (status, body) = t.join().expect("in-flight thread");
        assert_eq!(status, 200, "drained request: {body}");
    }
    handle.join();

    // Fully down: new connections are refused.
    assert!(
        http::exchange(&addr, "GET", "/healthz", None, Duration::from_secs(2)).is_err(),
        "the drained server must stop accepting"
    );
}

#[test]
fn keep_alive_connection_serves_pipelined_and_sequential_requests() {
    let handle = serve(2, 8);
    let addr = handle.addr().to_string();

    // Sequential keep-alive: health, a run, and the metrics scrape all
    // on ONE connection; `Connection: close` only on the last.
    let mut conn = http::ClientConn::connect(&addr, EXCHANGE_TIMEOUT).expect("connect");
    let (status, body) = conn.request("GET", "/healthz", None, false).expect("healthz");
    assert_eq!(status, 200, "{body}");
    let (status, body) = conn
        .request("POST", "/run", Some(&run_body("2MEM-1", ExperimentOptions::quick())), false)
        .expect("run");
    assert_eq!(status, 200, "{body}");
    let (status, metrics) = conn.request("GET", "/metrics", None, true).expect("metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("melreq_connections_total 1"),
        "all three requests share one connection: {metrics}"
    );

    // Pipelining: two requests written back-to-back arrive in one
    // buffer; both responses come back, in order, on the same socket.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect raw");
    raw.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let one = format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\n\r\n");
    raw.write_all(format!("{one}{one}").as_bytes()).expect("pipelined write");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = raw.read(&mut chunk).expect("pipelined read");
        assert!(n > 0, "server closed before both pipelined responses");
        buf.extend_from_slice(&chunk[..n]);
        let text = String::from_utf8_lossy(&buf);
        if text.matches("\"status\":\"ok\"").count() >= 2 {
            assert_eq!(text.matches("HTTP/1.1 200").count(), 2, "{text}");
            break;
        }
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn coalesced_identical_requests_run_one_simulation_with_identical_bytes() {
    let handle = serve(4, 8);
    let addr = handle.addr().to_string();

    // A leader heavy enough to still be in flight when the followers
    // arrive, then five byte-identical requests.
    let body = run_body("2MEM-1", slow_opts());
    let leader = {
        let addr = addr.clone();
        let body = body.clone();
        std::thread::spawn(move || post_run(&addr, &body))
    };
    std::thread::sleep(Duration::from_millis(300));
    let followers: Vec<_> = (0..5)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            std::thread::spawn(move || post_run(&addr, &body))
        })
        .collect();

    let (status, leader_body) = leader.join().expect("leader thread");
    assert_eq!(status, 200, "leader: {leader_body}");
    let (leader_env, leader_report) = split_envelope(&leader_body).expect("leader envelope");
    assert!(leader_env.contains("\"cache\":\"cold\""), "leader envelope: {leader_env}");

    for f in followers {
        let (status, body) = f.join().expect("follower thread");
        assert_eq!(status, 200, "follower: {body}");
        let (env, report) = split_envelope(&body).expect("follower envelope");
        assert_eq!(report, leader_report, "coalesced report bytes must be identical");
        assert!(env.contains("\"cache\":\"coalesced\""), "follower envelope: {env}");
    }

    // The store/session side proves it: exactly ONE simulation executed
    // for all six requests, and five of them coalesced onto it.
    assert_eq!(metric_value(&addr, "melreq_simulations_total"), 1.0);
    assert_eq!(metric_value(&addr, "melreq_serve_coalesced_total"), 5.0);

    handle.shutdown();
    handle.join();
}

#[test]
fn response_cache_serves_repeats_and_evicts_lru_at_tiny_cap() {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 4,
        store_dir: None,
        response_cache: 1,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = handle.addr().to_string();

    let a = run_body("2MEM-1", ExperimentOptions::quick());
    let b = run_body("2MEM-2", ExperimentOptions::quick());

    let (status, cold) = post_run(&addr, &a);
    assert_eq!(status, 200, "cold run: {cold}");
    let (env, cold_report) = split_envelope(&cold).expect("cold envelope");
    assert!(env.contains("\"cache\":\"cold\""), "first A is cold: {env}");

    let (status, hit) = post_run(&addr, &a);
    assert_eq!(status, 200, "cached run: {hit}");
    let (env, hit_report) = split_envelope(&hit).expect("hit envelope");
    assert!(env.contains("\"cache\":\"response\""), "repeat A hits the cache: {env}");
    assert_eq!(hit_report, cold_report, "cached report bytes identical to the cold run");

    // B displaces A from the 1-entry cache; A must re-run cold.
    let (status, _) = post_run(&addr, &b);
    assert_eq!(status, 200);
    let (status, third) = post_run(&addr, &a);
    assert_eq!(status, 200);
    let (env, _) = split_envelope(&third).expect("post-eviction envelope");
    assert!(env.contains("\"cache\":\"cold\""), "evicted entry re-runs: {env}");

    assert_eq!(metric_value(&addr, "melreq_serve_cache_hits_total"), 1.0);
    assert_eq!(metric_value(&addr, "melreq_serve_cache_misses_total"), 3.0);
    assert!(metric_value(&addr, "melreq_serve_cache_evictions_total") >= 1.0);

    handle.shutdown();
    handle.join();
}

/// Assert one histogram family's text rendering is well-formed for the
/// sample lines matching `label_filter`: `le` bounds strictly increase,
/// bucket counts are cumulative (non-decreasing), and the `+Inf` bucket
/// equals `_count`.
fn assert_histogram_conformant(text: &str, family: &str, label_filter: &str) {
    let value_of = |line: &str| -> f64 {
        line.rsplit(' ')
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("unparseable sample value in line: {line}"))
    };
    let bucket_prefix = format!("{family}_bucket{{");
    let mut prev_bound = f64::NEG_INFINITY;
    let mut prev_count = -1.0;
    let mut inf_count = None;
    let mut buckets = 0;
    for line in text.lines().filter(|l| l.starts_with(&bucket_prefix) && l.contains(label_filter)) {
        let le_at = line.find("le=\"").unwrap_or_else(|| panic!("bucket without le: {line}"));
        let rest = &line[le_at + 4..];
        let le = &rest[..rest.find('"').expect("unterminated le label")];
        let v = value_of(line);
        assert!(v >= prev_count, "bucket counts must be cumulative: {line}");
        prev_count = v;
        if le == "+Inf" {
            inf_count = Some(v);
        } else {
            let bound: f64 = le.parse().unwrap_or_else(|_| panic!("bad le bound: {line}"));
            assert!(bound > prev_bound, "le bounds must increase: {line}");
            prev_bound = bound;
        }
        buckets += 1;
    }
    assert!(buckets > 1, "family {family} ({label_filter}) has no buckets:\n{text}");
    let count_line = text
        .lines()
        .find(|l| l.starts_with(&format!("{family}_count")) && l.contains(label_filter))
        .unwrap_or_else(|| panic!("{family}_count ({label_filter}) missing:\n{text}"));
    assert_eq!(
        inf_count.expect("+Inf bucket missing"),
        value_of(count_line),
        "le=\"+Inf\" must equal _count for {family} ({label_filter})"
    );
}

#[test]
fn metrics_text_format_is_prometheus_conformant() {
    let handle = serve(1, 4);
    let addr = handle.addr().to_string();
    let (status, resp) = post_run(&addr, &run_body("2MEM-1", ExperimentOptions::quick()));
    assert_eq!(status, 200, "seed run: {resp}");

    let (status, text) =
        http::exchange(&addr, "GET", "/metrics", None, EXCHANGE_TIMEOUT).expect("metrics");
    assert_eq!(status, 200);

    // Every family announces itself with HELP then TYPE before its
    // samples, and every sample line parses as `name[{labels}] value`.
    let mut helped: Vec<String> = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helped.push(rest.split(' ').next().expect("family name").to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let family = it.next().expect("family name").to_string();
            let kind = it.next().expect("metric kind");
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "unknown TYPE kind: {line}");
            assert!(helped.contains(&family), "TYPE before HELP for {family}:\n{text}");
            typed.push(family);
        } else {
            let (name, value) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("malformed sample: {line}"));
            assert!(value.parse::<f64>().is_ok(), "sample value must parse as a float: {line}");
            // The family is the name up to `{`, with histogram-series
            // suffixes stripped; it must have been declared.
            let base = name.split('{').next().expect("sample name");
            let family = base
                .strip_suffix("_bucket")
                .or_else(|| base.strip_suffix("_sum"))
                .or_else(|| base.strip_suffix("_count"))
                .unwrap_or(base);
            assert!(
                typed.contains(&family.to_string()) || typed.contains(&base.to_string()),
                "sample without TYPE declaration: {line}"
            );
        }
    }

    // The request-latency histograms exist and are well-formed: the
    // total and one series per lifecycle stage.
    assert!(
        text.contains("# TYPE melreq_serve_request_duration_seconds histogram"),
        "request-duration histogram missing:\n{text}"
    );
    assert_histogram_conformant(&text, "melreq_serve_request_duration_seconds", "");
    for stage in ["parse", "queue", "execute", "render", "flush"] {
        assert_histogram_conformant(
            &text,
            "melreq_serve_request_stage_duration_seconds",
            &format!("stage=\"{stage}\""),
        );
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn buildinfo_endpoint_reports_configuration() {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        queue_cap: 5,
        store_dir: None,
        response_cache: 7,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = handle.addr().to_string();

    let (status, body) =
        http::exchange(&addr, "GET", "/buildinfo", None, EXCHANGE_TIMEOUT).expect("buildinfo");
    assert_eq!(status, 200, "{body}");
    for needle in [
        "\"name\":\"melreq-serve\"",
        &format!("\"schema_version\":{SCHEMA_VERSION}"),
        "\"poller\":\"",
        "\"workers\":3",
        "\"queue_cap\":5",
        "\"response_cache\":7",
        "\"store\":false",
        "\"profiling\":false",
        "\"access_log\":false",
    ] {
        assert!(body.contains(needle), "buildinfo must carry {needle}: {body}");
    }
    let (status, _) =
        http::exchange(&addr, "POST", "/buildinfo", None, EXCHANGE_TIMEOUT).expect("POST");
    assert_eq!(status, 405, "buildinfo is GET-only");

    handle.shutdown();
    handle.join();
}

#[test]
fn access_log_appends_one_structured_line_per_request() {
    let dir = std::env::temp_dir().join(format!("melreq-accesslog-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    let log = dir.join("access.jsonl");
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 4,
        store_dir: None,
        access_log: Some(log.clone()),
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = handle.addr().to_string();

    // Two sim requests get logged; operator endpoints do not.
    let (status, _) = post_run(&addr, &run_body("2MEM-1", ExperimentOptions::quick()));
    assert_eq!(status, 200);
    let (status, _) = post_run(&addr, &run_body("2MEM-2", ExperimentOptions::quick()));
    assert_eq!(status, 200);
    let (status, _) =
        http::exchange(&addr, "GET", "/healthz", None, EXCHANGE_TIMEOUT).expect("healthz");
    assert_eq!(status, 200);
    handle.shutdown();
    handle.join();

    let text = std::fs::read_to_string(&log).expect("access log written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one line per simulation request:\n{text}");
    for line in &lines {
        for needle in [
            "\"id\":",
            "\"endpoint\":\"run\"",
            "\"status\":200",
            "\"cache\":\"",
            "\"parse_us\":",
            "\"queue_us\":",
            "\"execute_us\":",
            "\"render_us\":",
            "\"flush_us\":",
            "\"total_us\":",
        ] {
            assert!(line.contains(needle), "access-log line must carry {needle}: {line}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profiled_server_records_request_lifecycle_spans() {
    // Enable the host profiler around a whole server lifetime — the same
    // sequence `serve_forever` runs for `--profile PATH` — and check the
    // event loop and worker threads produced lifecycle spans.
    melreq_prof::enable();
    let handle = serve(2, 8);
    let addr = handle.addr().to_string();
    let (status, resp) = post_run(&addr, &run_body("2MEM-1", ExperimentOptions::quick()));
    assert_eq!(status, 200, "profiled run: {resp}");
    handle.shutdown();
    handle.join();
    melreq_prof::disable();
    let profile = melreq_prof::drain();

    let has = |cat: &str, track_prefix: &str| {
        profile
            .tracks
            .iter()
            .filter(|t| t.label.starts_with(track_prefix))
            .any(|t| t.spans.iter().any(|s| s.cat == cat))
    };
    assert!(has("serve.request", "serve netio"), "request span on the event-loop track");
    assert!(has("serve.parse", "serve netio"), "parse span on the event-loop track");
    assert!(has("serve.execute", "serve-worker-"), "execute span on a worker track");
    assert!(has("serve.queue", "serve-worker-"), "queue-wait span on a worker track");

    // The Perfetto export of that profile is a loadable trace with the
    // summary block `serve_forever` embeds.
    let summary = melreq_prof::summarize(&profile, 5);
    let trace = melreq_obs::export_host_profile(
        &profile,
        "melreq serve",
        &[("summary", summary.render_json())],
    );
    assert!(trace.contains("\"traceEvents\""), "Perfetto envelope missing");
    assert!(trace.contains("serve netio"), "event-loop track missing from export");
}

#[test]
fn idle_keep_alive_connections_are_closed() {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 4,
        store_dir: None,
        idle_timeout_ms: 200,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = handle.addr().to_string();

    let mut conn = http::ClientConn::connect(&addr, Duration::from_secs(5)).expect("connect");
    let (status, _) = conn.request("GET", "/healthz", None, false).expect("healthz");
    assert_eq!(status, 200);
    std::thread::sleep(Duration::from_millis(800));
    assert!(
        conn.request("GET", "/healthz", None, false).is_err(),
        "a connection idle past the timeout must be closed by the server"
    );

    handle.shutdown();
    handle.join();
}
