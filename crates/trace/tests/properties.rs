//! Property-based tests of the synthetic stream generators.

use melreq_stats::types::CACHE_LINE_BYTES;
use melreq_trace::{
    AddressPattern, AddressStream, InstrStream, OpKind, OpMix, StreamParams, SyntheticStream,
};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = AddressPattern> {
    (10u32..=26, 0.0f64..=1.0, 1u64..=128, 0.0f64..=1.0).prop_map(
        |(ws_bits, seq, stride, chase)| AddressPattern {
            working_set: 1 << ws_bits,
            seq_prob: seq,
            stride,
            chase_prob: chase,
        },
    )
}

fn arb_params() -> impl Strategy<Value = StreamParams> {
    (arb_pattern(), 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=16.0, 0.0f64..=0.2).prop_map(
        |(pattern, mem_frac, load_frac, dep, mispredict)| StreamParams {
            mem_frac,
            load_frac,
            pattern,
            mix: OpMix::integer(),
            mean_dep_dist: dep,
            chase_dep_frac: 0.2,
            mispredict_rate: mispredict,
            code_footprint: 16 * 1024,
        },
    )
}

proptest! {
    /// Address streams never leave their assigned region, for any valid
    /// pattern.
    #[test]
    fn addresses_stay_in_region(p in arb_pattern(), seed in any::<u64>()) {
        let base = 0x4000_0000u64;
        let ws = p.working_set;
        let mut s = AddressStream::new(p, base, seed);
        for _ in 0..2000 {
            let a = s.next_sample().addr;
            prop_assert!(a >= base && a < base + ws, "address {a:#x} escaped region");
        }
    }

    /// Generated micro-ops respect their invariants: memory ops carry
    /// in-region addresses, PCs stay inside the code footprint, and
    /// dependency distances fit the ROB-visible window.
    #[test]
    fn ops_respect_invariants(params in arb_params(), seed in any::<u64>()) {
        let data = 0x1000_0000u64;
        let code = 0x8000_0000u64;
        let ws = params.pattern.working_set;
        let cf = params.code_footprint;
        let mut s = SyntheticStream::new("prop", params, data, code, seed);
        for _ in 0..2000 {
            let op = s.next_op();
            prop_assert!(op.pc >= code && op.pc < code + cf, "pc {:#x} out of code", op.pc);
            prop_assert!(op.dep_dist <= 64);
            if let Some(a) = op.kind.mem_addr() {
                prop_assert!(a >= data && a < data + ws, "data {a:#x} out of region");
            }
        }
    }

    /// Streams with the same seed are identical; the label round-trips.
    #[test]
    fn determinism(params in arb_params(), seed in any::<u64>()) {
        let mut a = SyntheticStream::new("x", params.clone(), 0, 0x8000_0000, seed);
        let mut b = SyntheticStream::new("x", params, 0, 0x8000_0000, seed);
        prop_assert_eq!(a.label(), "x");
        for _ in 0..256 {
            prop_assert_eq!(a.next_op(), b.next_op());
        }
    }

    /// The realized memory-op fraction converges to the configured one.
    #[test]
    fn mem_fraction_converges(frac in 0.05f64..0.95, seed in any::<u64>()) {
        let params = StreamParams {
            mem_frac: frac,
            load_frac: 0.7,
            pattern: AddressPattern::streaming(1 << 20),
            mix: OpMix::integer(),
            mean_dep_dist: 2.0,
            chase_dep_frac: 0.0,
            mispredict_rate: 0.02,
            code_footprint: 8 * 1024,
        };
        let mut s = SyntheticStream::new("frac", params, 0, 0x8000_0000, seed);
        let n = 20_000;
        let mem = (0..n).filter(|_| s.next_op().kind.is_mem()).count();
        let realized = mem as f64 / n as f64;
        prop_assert!((realized - frac).abs() < 0.05, "requested {frac}, realized {realized}");
    }

    /// Sequential steps advance by the configured stride and wrap.
    #[test]
    fn pure_sequential_walk(stride in 1u64..=256, seed in any::<u64>()) {
        let ws = 1u64 << 16;
        let p = AddressPattern { working_set: ws, seq_prob: 1.0, stride, chase_prob: 0.0 };
        let mut s = AddressStream::new(p, 0, seed);
        let mut prev = s.next_sample().addr;
        for _ in 0..1000 {
            let a = s.next_sample().addr;
            prop_assert!(a == prev + stride || a == 0, "unexpected step {prev:#x} -> {a:#x}");
            prev = a;
        }
    }

    /// Loads and stores split according to `load_frac`.
    #[test]
    fn load_store_split_converges(load_frac in 0.1f64..0.9, seed in any::<u64>()) {
        let params = StreamParams {
            mem_frac: 0.5,
            load_frac,
            pattern: AddressPattern::streaming(1 << 20),
            mix: OpMix::integer(),
            mean_dep_dist: 2.0,
            chase_dep_frac: 0.0,
            mispredict_rate: 0.0,
            code_footprint: 8 * 1024,
        };
        let mut s = SyntheticStream::new("split", params, 0, 0x8000_0000, seed);
        let (mut loads, mut stores) = (0u32, 0u32);
        for _ in 0..20_000 {
            match s.next_op().kind {
                OpKind::Load { .. } => loads += 1,
                OpKind::Store { .. } => stores += 1,
                _ => {}
            }
        }
        let realized = loads as f64 / (loads + stores) as f64;
        prop_assert!((realized - load_frac).abs() < 0.05);
    }
}

#[test]
fn jump_targets_are_line_aligned() {
    // Jumps land on line starts (the generator's contract with the
    // spatial-locality model).
    let p = AddressPattern { working_set: 1 << 20, seq_prob: 0.0, stride: 8, chase_prob: 0.5 };
    let mut s = AddressStream::new(p, 0, 99);
    for _ in 0..1000 {
        let a = s.next_sample().addr;
        assert_eq!(a % CACHE_LINE_BYTES, 0);
    }
}
