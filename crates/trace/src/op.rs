//! The micro-op record consumed by the out-of-order core model.

use melreq_stats::types::Addr;

/// Operation classes, matching the functional units of Table 1
/// (4 IntALU, 2 IntMult, 2 FPALU, 1 FPMult) plus memory and control ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Single-cycle integer ALU op.
    IntAlu,
    /// Integer multiply/divide.
    IntMult,
    /// Floating-point add/compare.
    FpAlu,
    /// Floating-point multiply/divide.
    FpMult,
    /// Conditional branch; `mispredict` charges the front-end redirect
    /// penalty when true.
    Branch {
        /// Whether the hybrid predictor missed this branch.
        mispredict: bool,
    },
    /// Data-cache load from `addr`.
    Load {
        /// Byte address of the access.
        addr: Addr,
    },
    /// Data-cache store to `addr`.
    Store {
        /// Byte address of the access.
        addr: Addr,
    },
}

impl OpKind {
    /// Execution latency in cycles once operands are ready, for
    /// non-memory ops. Memory ops get their latency from the cache
    /// hierarchy; they return the address-generation latency here.
    pub fn exec_latency(&self) -> u64 {
        match self {
            OpKind::IntAlu => 1,
            OpKind::IntMult => 3,
            OpKind::FpAlu => 2,
            OpKind::FpMult => 4,
            OpKind::Branch { .. } => 1,
            // Address generation before the cache access.
            OpKind::Load { .. } | OpKind::Store { .. } => 1,
        }
    }

    /// Whether this op accesses the data cache.
    pub fn is_mem(&self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// The data address, if a memory op.
    pub fn mem_addr(&self) -> Option<Addr> {
        match self {
            OpKind::Load { addr } | OpKind::Store { addr } => Some(*addr),
            _ => None,
        }
    }

    /// Serialize the op class and operands (for checkpointing in-flight
    /// pipeline state).
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        match *self {
            OpKind::IntAlu => enc.u8(0),
            OpKind::IntMult => enc.u8(1),
            OpKind::FpAlu => enc.u8(2),
            OpKind::FpMult => enc.u8(3),
            OpKind::Branch { mispredict } => {
                enc.u8(4);
                enc.bool(mispredict);
            }
            OpKind::Load { addr } => {
                enc.u8(5);
                enc.u64(addr);
            }
            OpKind::Store { addr } => {
                enc.u8(6);
                enc.u64(addr);
            }
        }
    }

    /// Decode an op class written by [`OpKind::save_state`].
    pub fn load_state(dec: &mut melreq_snap::Dec<'_>) -> Result<Self, melreq_snap::SnapError> {
        Ok(match dec.u8()? {
            0 => OpKind::IntAlu,
            1 => OpKind::IntMult,
            2 => OpKind::FpAlu,
            3 => OpKind::FpMult,
            4 => OpKind::Branch { mispredict: dec.bool()? },
            5 => OpKind::Load { addr: dec.u64()? },
            6 => OpKind::Store { addr: dec.u64()? },
            t => return Err(melreq_snap::SnapError::BadTag(t)),
        })
    }
}

/// One micro-op of the synthetic program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Program counter; drives the instruction-fetch stream (4-byte ops).
    pub pc: Addr,
    /// Operation class and operands.
    pub kind: OpKind,
    /// Register dependency: this op reads the result of the op `dep_dist`
    /// positions earlier in program order (0 = no register dependency).
    /// Small distances serialize execution (low ILP); 0 or large
    /// distances expose parallelism.
    pub dep_dist: u16,
}

impl MicroOp {
    /// Serialize this op (for checkpointing pipeline latches that hold a
    /// staged op).
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.u64(self.pc);
        self.kind.save_state(enc);
        enc.u16(self.dep_dist);
    }

    /// Decode an op written by [`MicroOp::save_state`].
    pub fn load_state(dec: &mut melreq_snap::Dec<'_>) -> Result<Self, melreq_snap::SnapError> {
        let pc = dec.u64()?;
        let kind = OpKind::load_state(dec)?;
        Ok(MicroOp { pc, kind, dep_dist: dec.u16()? })
    }
}

/// The address regions a program will touch, so a simulator can
/// functionally pre-warm its caches (the stand-in for the checkpoint
/// warm-up that SimPoint-based simulation performs before measuring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmHints {
    /// Start of the data working set.
    pub data_base: Addr,
    /// Length of the data working set in bytes.
    pub data_len: u64,
    /// Start of the code footprint.
    pub code_base: Addr,
    /// Length of the code footprint in bytes.
    pub code_len: u64,
}

/// An infinite, reproducible stream of micro-ops — one synthetic program.
pub trait InstrStream {
    /// The next op in program order.
    fn next_op(&mut self) -> MicroOp;

    /// Human-readable program name (benchmark code in the workload
    /// tables).
    fn label(&self) -> &str;

    /// The program's address regions for functional cache warm-up;
    /// `None` when unknown (no pre-warming happens).
    fn warm_hints(&self) -> Option<WarmHints> {
        None
    }

    /// Serialize the stream's mutable generation state — cursor
    /// positions and RNG state, not construction parameters — so a
    /// system checkpoint can resume the op sequence exactly where it
    /// left off.
    fn save_state(&self, enc: &mut melreq_snap::Enc);

    /// Restore state written by [`InstrStream::save_state`] into a
    /// stream constructed with identical parameters.
    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_unit_classes() {
        assert_eq!(OpKind::IntAlu.exec_latency(), 1);
        assert!(OpKind::IntMult.exec_latency() > OpKind::IntAlu.exec_latency());
        assert!(OpKind::FpMult.exec_latency() > OpKind::FpAlu.exec_latency());
    }

    #[test]
    fn mem_predicates() {
        let l = OpKind::Load { addr: 0x100 };
        let s = OpKind::Store { addr: 0x200 };
        assert!(l.is_mem() && s.is_mem());
        assert!(!OpKind::IntAlu.is_mem());
        assert_eq!(l.mem_addr(), Some(0x100));
        assert_eq!(s.mem_addr(), Some(0x200));
        assert_eq!(OpKind::Branch { mispredict: false }.mem_addr(), None);
    }
}
