//! Composable data-address generators.
//!
//! The locality structure of a program's address stream is what
//! determines its cache hit rates, its DRAM row-buffer behaviour and its
//! bandwidth demand — the three things the memory-efficiency metric
//! aggregates. [`AddressPattern`] describes a mixture of four archetypes;
//! [`AddressStream`] samples it reproducibly.

use melreq_stats::types::{Addr, CACHE_LINE_BYTES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Statistical description of a program's data-address behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressPattern {
    /// Size of the touched data region in bytes. Small working sets live
    /// in the caches; large ones stream from DRAM.
    pub working_set: u64,
    /// Probability that the next access continues a *sequential run*
    /// (next cache line) rather than jumping. High values give spatial
    /// locality — and DRAM row-buffer hits when misses reach memory.
    pub seq_prob: f64,
    /// Stride in bytes applied during a sequential run (usually one cache
    /// line; matrix codes use larger strides).
    pub stride: u64,
    /// Probability that a jump is a *pointer-chase* step (uniform within
    /// the working set but serialized by a data dependency — the CPU model
    /// reads `dep_dist` for that; the address itself is uniform).
    pub chase_prob: f64,
}

impl AddressPattern {
    /// A streaming pattern: long sequential runs over a large array
    /// (swim/applu-like).
    pub fn streaming(working_set: u64) -> Self {
        AddressPattern { working_set, seq_prob: 0.9, stride: CACHE_LINE_BYTES, chase_prob: 0.0 }
    }

    /// An irregular pattern: mostly uniform jumps in a large set
    /// (mcf-like).
    pub fn irregular(working_set: u64) -> Self {
        AddressPattern { working_set, seq_prob: 0.1, stride: CACHE_LINE_BYTES, chase_prob: 0.8 }
    }

    /// A cache-resident pattern: small working set (ILP apps).
    pub fn resident(working_set: u64) -> Self {
        AddressPattern { working_set, seq_prob: 0.5, stride: CACHE_LINE_BYTES, chase_prob: 0.0 }
    }

    fn validate(&self) {
        assert!(self.working_set >= CACHE_LINE_BYTES, "working set below one line");
        assert!((0.0..=1.0).contains(&self.seq_prob), "seq_prob out of range");
        assert!((0.0..=1.0).contains(&self.chase_prob), "chase_prob out of range");
        assert!(self.stride > 0, "stride must be positive");
    }
}

/// A reproducible sampler of an [`AddressPattern`] within a base region.
///
/// Each core's program gets a distinct `base` so programs never share
/// lines (the paper runs one independent program per core).
#[derive(Debug, Clone)]
pub struct AddressStream {
    pattern: AddressPattern, // melreq-allow(S01): construction-time config, identical across snapshot peers
    base: Addr, // melreq-allow(S01): construction-time config, identical across snapshot peers
    cursor: Addr,
    rng: SmallRng,
}

/// One sampled access: the address plus whether this step was a
/// pointer-chase (so the program model can attach a serializing
/// dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrSample {
    /// Byte address of the access.
    pub addr: Addr,
    /// True when the step was a dependent pointer-chase jump.
    pub chased: bool,
}

impl AddressStream {
    /// A stream over `[base, base + pattern.working_set)`.
    pub fn new(pattern: AddressPattern, base: Addr, seed: u64) -> Self {
        pattern.validate();
        AddressStream { pattern, base, cursor: base, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The pattern in use.
    pub fn pattern(&self) -> &AddressPattern {
        &self.pattern
    }

    /// Serialize the sampler's mutable state (cursor + RNG).
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.u64(self.cursor);
        for w in self.rng.state() {
            enc.u64(w);
        }
    }

    /// Restore state written by [`AddressStream::save_state`].
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        self.cursor = dec.u64()?;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = dec.u64()?;
        }
        self.rng = rand::rngs::SmallRng::from_state(s);
        Ok(())
    }

    /// Sample the next data address.
    pub fn next_sample(&mut self) -> AddrSample {
        let ws = self.pattern.working_set;
        if self.rng.gen_bool(self.pattern.seq_prob) {
            // Continue the sequential run.
            let next = self.cursor + self.pattern.stride;
            self.cursor = if next >= self.base + ws { self.base } else { next };
            AddrSample { addr: self.cursor, chased: false }
        } else {
            // Jump somewhere in the working set.
            let offset = self.rng.gen_range(0..ws / CACHE_LINE_BYTES) * CACHE_LINE_BYTES;
            self.cursor = self.base + offset;
            let chased = self.rng.gen_bool(self.pattern.chase_prob);
            AddrSample { addr: self.cursor, chased }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_working_set() {
        let p = AddressPattern::streaming(1 << 20);
        let mut s = AddressStream::new(p, 0x1000_0000, 7);
        for _ in 0..10_000 {
            let a = s.next_sample().addr;
            assert!(a >= 0x1000_0000);
            assert!(a < 0x1000_0000 + (1 << 20));
        }
    }

    #[test]
    fn streaming_is_mostly_sequential() {
        let p = AddressPattern::streaming(1 << 22);
        let mut s = AddressStream::new(p, 0, 7);
        let mut prev = s.next_sample().addr;
        let mut seq = 0;
        let n = 10_000;
        for _ in 0..n {
            let a = s.next_sample().addr;
            if a == prev + CACHE_LINE_BYTES {
                seq += 1;
            }
            prev = a;
        }
        assert!(seq as f64 / n as f64 > 0.8, "only {seq}/{n} sequential");
    }

    #[test]
    fn irregular_rarely_sequential_and_chases() {
        let p = AddressPattern::irregular(1 << 22);
        let mut s = AddressStream::new(p, 0, 7);
        let mut prev = s.next_sample().addr;
        let (mut seq, mut chase) = (0, 0);
        let n = 10_000;
        for _ in 0..n {
            let smp = s.next_sample();
            if smp.addr == prev + CACHE_LINE_BYTES {
                seq += 1;
            }
            if smp.chased {
                chase += 1;
            }
            prev = smp.addr;
        }
        assert!((seq as f64) / (n as f64) < 0.25, "{seq} sequential");
        assert!((chase as f64) / (n as f64) > 0.5, "{chase} chased");
    }

    #[test]
    fn reproducible_with_same_seed() {
        let p = AddressPattern::irregular(1 << 20);
        let mut a = AddressStream::new(p.clone(), 0, 42);
        let mut b = AddressStream::new(p, 0, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let p = AddressPattern::irregular(1 << 20);
        let mut a = AddressStream::new(p.clone(), 0, 1);
        let mut b = AddressStream::new(p, 0, 2);
        let same = (0..1000).filter(|_| a.next_sample() == b.next_sample()).count();
        assert!(same < 500, "streams too correlated: {same}");
    }

    #[test]
    #[should_panic(expected = "working set below one line")]
    fn tiny_working_set_rejected() {
        let p = AddressPattern { working_set: 32, seq_prob: 0.5, stride: 64, chase_prob: 0.0 };
        let _ = AddressStream::new(p, 0, 0);
    }

    #[test]
    fn wraps_at_region_end() {
        let p = AddressPattern { working_set: 256, seq_prob: 1.0, stride: 64, chase_prob: 0.0 };
        let mut s = AddressStream::new(p, 0x1000, 0);
        let addrs: Vec<Addr> = (0..8).map(|_| s.next_sample().addr).collect();
        assert_eq!(addrs, vec![0x1040, 0x1080, 0x10c0, 0x1000, 0x1040, 0x1080, 0x10c0, 0x1000]);
    }
}
