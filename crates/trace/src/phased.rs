//! Multi-phase program models.
//!
//! The paper's ME profile is a single number per program, measured once
//! off-line; its future-work section asks for "online methods that can
//! dynamically predict the memory efficiency of a program" precisely
//! because real programs change phases. [`PhasedStream`] provides the
//! test vehicle: it cycles through a list of [`SyntheticStream`]s, each
//! for a fixed number of ops, so a program can be compute-bound for one
//! phase and bandwidth-bound for the next. Offline profiling sees the
//! *average*; the online estimator can track the *current* phase.

use crate::op::{InstrStream, MicroOp, WarmHints};
use crate::synthetic::SyntheticStream;

/// A program that cycles through phases of different behaviour.
#[derive(Debug, Clone)]
pub struct PhasedStream {
    label: String, // melreq-allow(S01): construction-time config, identical across snapshot peers
    phases: Vec<(SyntheticStream, u64)>,
    current: usize,
    remaining: u64,
}

impl PhasedStream {
    /// Build from `(stream, ops)` phases, cycled forever in order.
    ///
    /// # Panics
    /// Panics when `phases` is empty or any phase length is zero.
    pub fn new(label: impl Into<String>, phases: Vec<(SyntheticStream, u64)>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(phases.iter().all(|(_, n)| *n > 0), "phase lengths must be positive");
        let remaining = phases[0].1;
        PhasedStream { label: label.into(), phases, current: 0, remaining }
    }

    /// Index of the phase currently generating ops.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// Number of phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

impl InstrStream for PhasedStream {
    fn next_op(&mut self) -> MicroOp {
        if self.remaining == 0 {
            self.current = (self.current + 1) % self.phases.len();
            self.remaining = self.phases[self.current].1;
        }
        self.remaining -= 1;
        self.phases[self.current].0.next_op()
    }

    fn label(&self) -> &str {
        &self.label
    }

    /// Warm hints cover the most memory-demanding phase (the union of
    /// regions would exceed what pre-warming can usefully install).
    fn warm_hints(&self) -> Option<WarmHints> {
        self.phases.iter().filter_map(|(s, _)| s.warm_hints()).max_by_key(|h| h.data_len)
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.current);
        enc.u64(self.remaining);
        for (s, _) in &self.phases {
            s.save_state(enc);
        }
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        let current = dec.usize()?;
        if current >= self.phases.len() {
            return Err(melreq_snap::SnapError::Invalid("phase index out of range"));
        }
        self.current = current;
        self.remaining = dec.u64()?;
        for (s, _) in &mut self.phases {
            s.load_state(dec)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrgen::AddressPattern;
    use crate::op::OpKind;
    use crate::synthetic::{OpMix, StreamParams};

    fn stream(mem_frac: f64, ws: u64, seed: u64) -> SyntheticStream {
        let params = StreamParams {
            mem_frac,
            load_frac: 0.7,
            pattern: AddressPattern::streaming(ws),
            mix: OpMix::integer(),
            mean_dep_dist: 3.0,
            chase_dep_frac: 0.0,
            mispredict_rate: 0.01,
            code_footprint: 8 * 1024,
        };
        SyntheticStream::new("phase", params, 0x1000_0000, 0x8000_0000, seed)
    }

    #[test]
    fn phases_alternate_at_the_configured_length() {
        let mut p = PhasedStream::new(
            "two-phase",
            vec![(stream(0.0, 1 << 20, 1), 100), (stream(1.0, 1 << 20, 2), 100)],
        );
        // Phase 0: no memory ops at all; phase 1: all memory ops.
        let first: Vec<MicroOp> = (0..100).map(|_| p.next_op()).collect();
        assert!(first.iter().all(|op| !op.kind.is_mem()));
        assert_eq!(p.current_phase(), 0);
        let second: Vec<MicroOp> = (0..100).map(|_| p.next_op()).collect();
        assert!(second.iter().all(|op| op.kind.is_mem()));
        assert_eq!(p.current_phase(), 1);
        // Cycles back.
        let third = p.next_op();
        assert!(!third.kind.is_mem());
        assert_eq!(p.current_phase(), 0);
    }

    #[test]
    fn memory_intensity_differs_across_phases() {
        let mut p = PhasedStream::new(
            "mixed",
            vec![(stream(0.05, 1 << 16, 3), 5000), (stream(0.5, 1 << 24, 4), 5000)],
        );
        let count_mem = |p: &mut PhasedStream, n: u64| {
            (0..n).filter(|_| matches!(p.next_op().kind, k if k.is_mem())).count()
        };
        let light = count_mem(&mut p, 5000);
        let heavy = count_mem(&mut p, 5000);
        assert!(heavy > 5 * light, "phases must differ: {light} vs {heavy}");
    }

    #[test]
    fn warm_hints_cover_the_biggest_phase() {
        let p = PhasedStream::new(
            "w",
            vec![(stream(0.1, 1 << 16, 5), 10), (stream(0.3, 1 << 24, 6), 10)],
        );
        assert_eq!(p.warm_hints().expect("hints").data_len, 1 << 24);
    }

    #[test]
    fn label_roundtrips() {
        let p = PhasedStream::new("zig-zag", vec![(stream(0.1, 1 << 16, 7), 10)]);
        assert_eq!(p.label(), "zig-zag");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = PhasedStream::new("none", vec![]);
    }

    #[test]
    #[should_panic(expected = "phase lengths must be positive")]
    fn zero_length_phase_rejected() {
        let _ = PhasedStream::new("zero", vec![(stream(0.1, 1 << 16, 8), 0)]);
    }

    #[test]
    fn deterministic_given_same_construction() {
        let mk = || {
            PhasedStream::new(
                "det",
                vec![(stream(0.2, 1 << 20, 9), 64), (stream(0.6, 1 << 22, 10), 64)],
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn ops_are_well_formed_across_boundaries() {
        let mut p = PhasedStream::new(
            "bounds",
            vec![(stream(0.3, 1 << 20, 11), 33), (stream(0.3, 1 << 20, 12), 17)],
        );
        for _ in 0..1000 {
            let op = p.next_op();
            if let OpKind::Load { addr } | OpKind::Store { addr } = op.kind {
                assert!(addr >= 0x1000_0000);
            }
        }
    }
}
