//! Micro-op records and synthetic instruction-stream generation.
//!
//! The paper drives its simulator with SPEC CPU2000 SimPoint slices. This
//! crate provides the substitute: *statistical* instruction streams whose
//! parameters (memory-instruction fraction, working-set size, spatial
//! locality, dependency structure, op mix) are tuned per benchmark in
//! `melreq-workloads`. A stream is an infinite, seeded, reproducible
//! iterator of [`MicroOp`]s; "taking a different simpoint" of the same
//! program maps to re-seeding the same generator.
//!
//! Layers:
//!
//! * [`op`] — the [`MicroOp`] record consumed by the CPU model: program
//!   counter, operation kind (with data address for loads/stores), and a
//!   register-dependency distance;
//! * [`addrgen`] — composable data-address generators: sequential runs,
//!   strided walks, uniform working-set references, and pointer-chase
//!   chains;
//! * [`synthetic`] — the statistical program model combining an op mix,
//!   an address generator, dependency-distance sampling, and a code
//!   footprint for the instruction-fetch stream.

pub mod addrgen;
pub mod op;
pub mod phased;
pub mod synthetic;

pub use addrgen::{AddressPattern, AddressStream};
pub use op::{InstrStream, MicroOp, OpKind, WarmHints};
pub use phased::PhasedStream;
pub use synthetic::{OpMix, StreamParams, SyntheticStream};
