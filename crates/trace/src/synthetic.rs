//! The statistical program model.
//!
//! A [`SyntheticStream`] is an infinite micro-op sequence with a fixed
//! statistical profile: op mix, memory-instruction fraction, data-address
//! pattern, dependency structure and branch-misprediction rate. Tuning
//! these knobs reproduces the *aggregate* behaviour the scheduling study
//! depends on — IPC under a given memory latency, bandwidth demand, and
//! row-buffer friendliness — without the original SPEC binaries.

use crate::addrgen::{AddressPattern, AddressStream};
use crate::op::{InstrStream, MicroOp, OpKind, WarmHints};
use melreq_stats::types::Addr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Relative frequencies of non-memory op classes (normalized internally).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Integer ALU weight.
    pub int_alu: f64,
    /// Integer multiply weight.
    pub int_mult: f64,
    /// FP ALU weight.
    pub fp_alu: f64,
    /// FP multiply weight.
    pub fp_mult: f64,
    /// Branch weight.
    pub branch: f64,
}

impl OpMix {
    /// Integer-dominated mix (gzip/gcc-like).
    pub fn integer() -> Self {
        OpMix { int_alu: 0.70, int_mult: 0.05, fp_alu: 0.0, fp_mult: 0.0, branch: 0.25 }
    }

    /// Floating-point mix (swim/applu-like).
    pub fn floating() -> Self {
        OpMix { int_alu: 0.35, int_mult: 0.05, fp_alu: 0.35, fp_mult: 0.15, branch: 0.10 }
    }

    fn total(&self) -> f64 {
        self.int_alu + self.int_mult + self.fp_alu + self.fp_mult + self.branch
    }
}

/// Full parameterization of one synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamParams {
    /// Fraction of ops that access the data cache (loads + stores).
    pub mem_frac: f64,
    /// Of the memory ops, the fraction that are loads.
    pub load_frac: f64,
    /// Data-address behaviour.
    pub pattern: AddressPattern,
    /// Non-memory op mix.
    pub mix: OpMix,
    /// Mean register-dependency distance for non-chase ops. Larger means
    /// more ILP. Sampled geometrically; 0 disables dependencies.
    pub mean_dep_dist: f64,
    /// Fraction of *load* ops that serialize on the previous load
    /// (pointer chasing) in addition to what the address pattern samples.
    pub chase_dep_frac: f64,
    /// Branch misprediction probability.
    pub mispredict_rate: f64,
    /// Bytes of code the program walks (drives L1I behaviour).
    pub code_footprint: u64,
}

impl StreamParams {
    fn validate(&self) {
        for (v, name) in [
            (self.mem_frac, "mem_frac"),
            (self.load_frac, "load_frac"),
            (self.chase_dep_frac, "chase_dep_frac"),
            (self.mispredict_rate, "mispredict_rate"),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} out of [0,1]: {v}");
        }
        assert!(self.mean_dep_dist >= 0.0, "mean_dep_dist must be non-negative");
        assert!(self.code_footprint >= 64, "code footprint below one line");
        assert!(self.mix.total() > 0.0, "op mix must have positive weight");
    }
}

/// The generator implementing [`InstrStream`].
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    label: String, // melreq-allow(S01): construction-time config, identical across snapshot peers
    params: StreamParams, // melreq-allow(S01): construction-time config, identical across snapshot peers
    addrs: AddressStream,
    rng: SmallRng,
    pc: Addr,
    data_base: Addr, // melreq-allow(S01): construction-time config, identical across snapshot peers
    code_base: Addr, // melreq-allow(S01): construction-time config, identical across snapshot peers
    /// Distance (in ops) back to the most recent load, for chase deps.
    ops_since_load: u16,
}

impl SyntheticStream {
    /// Build a stream. `data_base`/`code_base` place the program's data
    /// and code regions (distinct per core); `seed` selects the "slice".
    pub fn new(
        label: impl Into<String>,
        params: StreamParams,
        data_base: Addr,
        code_base: Addr,
        seed: u64,
    ) -> Self {
        params.validate();
        // Derive decorrelated sub-seeds for the two RNG consumers.
        let addr_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        SyntheticStream {
            label: label.into(),
            addrs: AddressStream::new(params.pattern.clone(), data_base, addr_seed),
            params,
            rng: SmallRng::seed_from_u64(seed),
            pc: code_base,
            data_base,
            code_base,
            ops_since_load: 0,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    fn advance_pc(&mut self, branch_taken_jump: bool) -> Addr {
        let pc = self.pc;
        if branch_taken_jump {
            // Jump somewhere in the code footprint (taken branch).
            let lines = self.params.code_footprint / 64;
            let line = self.rng.gen_range(0..lines);
            self.pc = self.code_base + line * 64;
        } else {
            self.pc += 4;
            if self.pc >= self.code_base + self.params.code_footprint {
                self.pc = self.code_base;
            }
        }
        pc
    }

    fn sample_dep(&mut self) -> u16 {
        if self.params.mean_dep_dist <= 0.0 {
            return 0;
        }
        // Geometric with the requested mean; clamp into the ROB-visible
        // window. Distance 0 means "independent".
        let p = 1.0 / (1.0 + self.params.mean_dep_dist);
        let mut d = 0u16;
        while d < 64 && !self.rng.gen_bool(p) {
            d += 1;
        }
        d
    }
}

impl InstrStream for SyntheticStream {
    fn next_op(&mut self) -> MicroOp {
        let is_mem = self.rng.gen_bool(self.params.mem_frac);
        if is_mem {
            let sample = self.addrs.next_sample();
            let is_load = self.rng.gen_bool(self.params.load_frac);
            let pc = self.advance_pc(false);
            let dep_dist = if is_load
                && (sample.chased || self.rng.gen_bool(self.params.chase_dep_frac))
                && self.ops_since_load > 0
            {
                // Serialize on the previous load: pointer chasing. Clamp
                // to the same 64-op window as sampled dependencies — a
                // producer further back is effectively always resolved.
                self.ops_since_load.min(64)
            } else {
                self.sample_dep()
            };
            let kind = if is_load {
                self.ops_since_load = 0;
                OpKind::Load { addr: sample.addr }
            } else {
                OpKind::Store { addr: sample.addr }
            };
            self.ops_since_load = self.ops_since_load.saturating_add(1);
            MicroOp { pc, kind, dep_dist }
        } else {
            let m = &self.params.mix;
            let total = m.total();
            let x = self.rng.gen_range(0.0..total);
            let kind = if x < m.int_alu {
                OpKind::IntAlu
            } else if x < m.int_alu + m.int_mult {
                OpKind::IntMult
            } else if x < m.int_alu + m.int_mult + m.fp_alu {
                OpKind::FpAlu
            } else if x < m.int_alu + m.int_mult + m.fp_alu + m.fp_mult {
                OpKind::FpMult
            } else {
                OpKind::Branch { mispredict: self.rng.gen_bool(self.params.mispredict_rate) }
            };
            let taken_jump = matches!(kind, OpKind::Branch { .. }) && self.rng.gen_bool(0.3);
            let pc = self.advance_pc(taken_jump);
            let dep_dist = self.sample_dep();
            self.ops_since_load = self.ops_since_load.saturating_add(1);
            MicroOp { pc, kind, dep_dist }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn warm_hints(&self) -> Option<WarmHints> {
        Some(WarmHints {
            data_base: self.data_base,
            data_len: self.params.pattern.working_set,
            code_base: self.code_base,
            code_len: self.params.code_footprint,
        })
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        self.addrs.save_state(enc);
        for w in self.rng.state() {
            enc.u64(w);
        }
        enc.u64(self.pc);
        enc.u16(self.ops_since_load);
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        self.addrs.load_state(dec)?;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = dec.u64()?;
        }
        self.rng = SmallRng::from_state(s);
        self.pc = dec.u64()?;
        self.ops_since_load = dec.u16()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(mem_frac: f64) -> StreamParams {
        StreamParams {
            mem_frac,
            load_frac: 0.7,
            pattern: AddressPattern::streaming(1 << 22),
            mix: OpMix::integer(),
            mean_dep_dist: 4.0,
            chase_dep_frac: 0.0,
            mispredict_rate: 0.05,
            code_footprint: 16 * 1024,
        }
    }

    fn stream(mem_frac: f64, seed: u64) -> SyntheticStream {
        SyntheticStream::new("test", params(mem_frac), 0x1000_0000, 0x4000_0000, seed)
    }

    #[test]
    fn mem_fraction_is_respected() {
        let mut s = stream(0.3, 1);
        let n = 50_000;
        let mem = (0..n).filter(|_| s.next_op().kind.is_mem()).count();
        let frac = mem as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "mem frac {frac}");
    }

    #[test]
    fn load_store_split() {
        let mut s = stream(0.5, 2);
        let (mut loads, mut stores) = (0, 0);
        for _ in 0..50_000 {
            match s.next_op().kind {
                OpKind::Load { .. } => loads += 1,
                OpKind::Store { .. } => stores += 1,
                _ => {}
            }
        }
        let frac = loads as f64 / (loads + stores) as f64;
        assert!((frac - 0.7).abs() < 0.02, "load frac {frac}");
    }

    #[test]
    fn reproducible_and_seed_sensitive() {
        let mut a = stream(0.3, 42);
        let mut b = stream(0.3, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = stream(0.3, 43);
        let same = (0..1000).filter(|_| a.next_op() == c.next_op()).count();
        assert!(same < 100, "different seeds too correlated: {same}");
    }

    #[test]
    fn pcs_stay_in_code_footprint() {
        let mut s = stream(0.2, 3);
        for _ in 0..20_000 {
            let op = s.next_op();
            assert!(op.pc >= 0x4000_0000);
            assert!(op.pc < 0x4000_0000 + 16 * 1024);
        }
    }

    #[test]
    fn dep_distances_have_requested_scale() {
        let mut s = stream(0.0, 4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.next_op().dep_dist as f64).sum::<f64>() / n as f64;
        // Geometric mean_dep_dist = 4 clamped at 64: expect ~4.
        assert!((mean - 4.0).abs() < 0.5, "mean dep {mean}");
    }

    #[test]
    fn chase_serializes_on_previous_load() {
        let p = StreamParams {
            chase_dep_frac: 1.0,
            pattern: AddressPattern::irregular(1 << 22),
            ..params(0.5)
        };
        let mut s = SyntheticStream::new("chase", p, 0, 0x4000_0000, 5);
        let mut ops: Vec<MicroOp> = Vec::new();
        for _ in 0..5000 {
            ops.push(s.next_op());
        }
        // Every load (after the first) must depend on the previous load.
        let mut checked = 0;
        for (i, op) in ops.iter().enumerate() {
            if let OpKind::Load { .. } = op.kind {
                if op.dep_dist > 0 && op.dep_dist as usize <= i {
                    let producer = &ops[i - op.dep_dist as usize];
                    if matches!(producer.kind, OpKind::Load { .. }) {
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 500, "only {checked} chased loads found");
    }

    #[test]
    #[should_panic(expected = "mem_frac out of [0,1]")]
    fn invalid_params_rejected() {
        let mut p = params(0.3);
        p.mem_frac = 1.5;
        let _ = SyntheticStream::new("bad", p, 0, 0, 0);
    }

    #[test]
    fn mispredict_rate_sampled() {
        let mut p = params(0.0);
        p.mispredict_rate = 0.5;
        let mut s = SyntheticStream::new("b", p, 0, 0x4000_0000, 6);
        let (mut branches, mut miss) = (0, 0);
        for _ in 0..50_000 {
            if let OpKind::Branch { mispredict } = s.next_op().kind {
                branches += 1;
                if mispredict {
                    miss += 1;
                }
            }
        }
        assert!(branches > 5000);
        let rate = miss as f64 / branches as f64;
        assert!((rate - 0.5).abs() < 0.05, "mispredict rate {rate}");
    }
}
