//! Binary snapshot codec for system checkpoints.
//!
//! Every simulation crate serializes its mutable state through the
//! [`Enc`]/[`Dec`] pair defined here, so a whole-system checkpoint is a
//! single flat byte buffer with no external dependencies. The format is
//! deliberately dumb: fixed-width little-endian fields written in struct
//! order, no field tags, no self-description. Compatibility is governed
//! entirely by [`SCHEMA_VERSION`] — any change to what any crate writes
//! must bump it, which invalidates every persisted checkpoint (the store
//! keys include the version, so stale files are simply never matched).
//!
//! [`seal`]/[`open`] wrap a payload in a container with a magic number,
//! the schema version and an FNV-1a checksum, so a truncated or corrupted
//! file on disk is rejected up front instead of mis-decoding.

/// Bump on ANY change to any crate's `save_state` encoding. Persisted
/// checkpoints and profiles from other versions are ignored, never
/// migrated.
pub const SCHEMA_VERSION: u32 = 4;

/// Magic prefix of a sealed container ("MRQSNP" + 2 format bytes).
pub const MAGIC: [u8; 8] = *b"MRQSNP\x00\x01";

/// Decoding failure: the buffer does not match what the decoder expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// A tag/bool/enum discriminant had an impossible value.
    BadTag(u8),
    /// Container magic or checksum mismatch, or version skew.
    BadContainer(&'static str),
    /// A decoded value violates a structural invariant (e.g. a length
    /// that disagrees with the configured capacity).
    Invalid(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadTag(t) => write!(f, "invalid snapshot tag {t}"),
            SnapError::BadContainer(why) => write!(f, "bad snapshot container: {why}"),
            SnapError::Invalid(why) => write!(f, "invalid snapshot contents: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Byte-buffer encoder. All integers are little-endian; `usize` is
/// widened to `u64` so 32- and 64-bit hosts produce identical bytes.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Consume the encoder, returning the raw payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Write an `Option<u64>` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Write an `Option<f64>` (presence byte + bits).
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed `u64` slice.
    pub fn u64s(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }

    /// Write a length-prefixed `f64` slice.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }
}

/// Byte-buffer decoder over a payload produced by [`Enc`].
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    /// Whether every byte has been consumed (load code asserts this at
    /// the end so silently-ignored trailing state is impossible).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.data.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Read a `usize` (stored as `u64`; rejects values that overflow the
    /// host `usize`).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Invalid("usize overflow"))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool` (rejects bytes other than 0/1).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag(t)),
        }
    }

    /// Read an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    /// Read an `Option<f64>`.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, SnapError> {
        Ok(if self.bool()? { Some(self.f64()?) } else { None })
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.usize()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Invalid("non-UTF-8 string"))
    }

    /// Read a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, SnapError> {
        let n = self.usize()?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Read a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, SnapError> {
        let n = self.usize()?;
        (0..n).map(|_| self.f64()).collect()
    }
}

/// FNV-1a over `bytes` — the same construction the audit crate uses for
/// event-stream hashes, reused here for container checksums and for
/// content-addressed store keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical content-addressed key: FNV-1a over
/// `"v{SCHEMA_VERSION}|{domain}|{canonical}"`.
///
/// This is the one key construction shared by every cache in the
/// workspace — the checkpoint store's warm-up and profile records and
/// the service layer's request keys all address content through it, so
/// a schema bump invalidates every derived key at once and two
/// subsystems can never collide as long as their `domain` differs.
pub fn keyed(domain: &str, canonical: &str) -> u64 {
    fnv1a(format!("v{SCHEMA_VERSION}|{domain}|{canonical}").as_bytes())
}

/// Wrap `payload` in a self-checking container:
/// `MAGIC · SCHEMA_VERSION · payload-len · FNV-1a(payload) · payload`.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a sealed container and return its payload slice. Rejects
/// wrong magic, version skew, truncation and checksum mismatches.
pub fn open(container: &[u8]) -> Result<&[u8], SnapError> {
    if container.len() < 28 {
        return Err(SnapError::BadContainer("too short"));
    }
    if container[..8] != MAGIC {
        return Err(SnapError::BadContainer("bad magic"));
    }
    let version = u32::from_le_bytes(container[8..12].try_into().unwrap());
    if version != SCHEMA_VERSION {
        return Err(SnapError::BadContainer("schema version mismatch"));
    }
    let len = u64::from_le_bytes(container[12..20].try_into().unwrap());
    let sum = u64::from_le_bytes(container[20..28].try_into().unwrap());
    let payload = &container[28..];
    if payload.len() as u64 != len {
        return Err(SnapError::BadContainer("length mismatch"));
    }
    if fnv1a(payload) != sum {
        return Err(SnapError::BadContainer("checksum mismatch"));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(300);
        e.u32(1 << 20);
        e.u64(u64::MAX - 1);
        e.u128(u128::MAX / 3);
        e.usize(12345);
        e.f64(-0.125);
        e.bool(true);
        e.bool(false);
        e.opt_u64(Some(9));
        e.opt_u64(None);
        e.opt_f64(Some(2.5));
        e.opt_f64(None);
        e.str("hello ✓");
        e.u64s(&[1, 2, 3]);
        e.f64s(&[0.5, -1.0]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 1 << 20);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.u128().unwrap(), u128::MAX / 3);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.opt_f64().unwrap(), Some(2.5));
        assert_eq!(d.opt_f64().unwrap(), None);
        assert_eq!(d.str().unwrap(), "hello ✓");
        assert_eq!(d.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.f64s().unwrap(), vec![0.5, -1.0]);
        assert!(d.is_exhausted());
    }

    #[test]
    fn f64_bit_patterns_survive() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE] {
            let mut e = Enc::new();
            e.f64(v);
            let b = e.into_bytes();
            let got = Dec::new(&b).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Enc::new();
        e.u64(42);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..7]);
        assert_eq!(d.u64(), Err(SnapError::Truncated));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut d = Dec::new(&[2]);
        assert_eq!(d.bool(), Err(SnapError::BadTag(2)));
    }

    #[test]
    fn seal_open_roundtrip() {
        let payload = b"state bytes";
        let sealed = seal(payload);
        assert_eq!(open(&sealed).unwrap(), payload);
    }

    #[test]
    fn open_rejects_corruption() {
        let mut sealed = seal(b"abcdef");
        // Flip a payload bit: checksum must catch it.
        *sealed.last_mut().unwrap() ^= 1;
        assert!(matches!(open(&sealed), Err(SnapError::BadContainer("checksum mismatch"))));
        // Truncate: length check must catch it.
        let sealed = seal(b"abcdef");
        assert!(open(&sealed[..sealed.len() - 1]).is_err());
        // Wrong magic.
        let mut bad = seal(b"x");
        bad[0] = b'Z';
        assert!(matches!(open(&bad), Err(SnapError::BadContainer("bad magic"))));
        // Wrong version.
        let mut skew = seal(b"x");
        skew[8] = skew[8].wrapping_add(1);
        assert!(matches!(open(&skew), Err(SnapError::BadContainer("schema version mismatch"))));
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
