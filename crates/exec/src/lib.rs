//! A scoped work-stealing job pool for the experiment sweep.
//!
//! The schedulable unit is a *job*: a boxed closure that may borrow from
//! the caller's stack frame (the pool is built on [`std::thread::scope`],
//! so jobs carry a `'env` lifetime instead of `'static`) and that may
//! *fork* further jobs while running. Two queues feed the workers:
//!
//! * a global **injector** ordered by `(priority desc, submission seq
//!   asc)` — the sweep submits one warm-up job per workload group here,
//!   with the group's core count as the priority, so the longest
//!   critical paths (8-core warm-ups) start first and ties resolve in
//!   deterministic submission order;
//! * one **local deque** per worker for forked children, popped LIFO by
//!   the owner (the freshly published snapshot is still warm in cache)
//!   and stolen FIFO by idle siblings (the oldest fork has waited
//!   longest and is the fairest steal).
//!
//! Determinism contract: the pool guarantees *completion*, not order —
//! every submitted and forked job has run exactly once when
//! [`run_scope`] returns. Callers that need deterministic output write
//! results into pre-indexed slots, which makes the merged output
//! independent of the execution interleaving; the experiment harness
//! pins this end to end (byte-identical artifacts at any worker count).
//!
//! A panicking job (or seeder) drains the pool — workers stop picking
//! up new work, in-flight jobs finish — and the first panic payload is
//! re-thrown from [`run_scope`] on the calling thread.

use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A unit of work: runs once on some worker, receiving a [`Ctx`] through
/// which it can fork children.
type Job<'env> = Box<dyn FnOnce(Ctx<'_, 'env>) + Send + 'env>;

/// An injector entry: jobs pop highest `priority` first; equal
/// priorities pop in submission order (`seq` ascending).
struct Ranked<'env> {
    priority: u64,
    seq: u64,
    /// Profiler-clock submit stamp (0 when profiling is off).
    submitted_ns: u64,
    job: Job<'env>,
}

/// A forked child parked on a worker's local deque.
struct Forked<'env> {
    /// Profiler-clock fork stamp (0 when profiling is off).
    submitted_ns: u64,
    job: Job<'env>,
}

/// A job plus its scheduling provenance, as handed to a worker.
struct Taken<'env> {
    job: Job<'env>,
    submitted_ns: u64,
    /// `Some(priority, seq)` for injector roots, `None` for forks.
    root: Option<(u64, u64)>,
    /// Popped from another worker's deque rather than our own.
    stolen: bool,
}

impl PartialEq for Ranked<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Ranked<'_> {}
impl PartialOrd for Ranked<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: larger priority wins, then the
        // *smaller* submission sequence (earlier submit) wins.
        (self.priority, std::cmp::Reverse(self.seq))
            .cmp(&(other.priority, std::cmp::Reverse(other.seq)))
    }
}

/// State shared between the seeding thread and the workers.
struct Shared<'env> {
    injector: Mutex<BinaryHeap<Ranked<'env>>>,
    seq: AtomicU64,
    locals: Vec<Mutex<VecDeque<Forked<'env>>>>,
    /// Jobs submitted or forked but not yet finished.
    active: AtomicUsize,
    /// Set once the seeding closure has returned: only then does
    /// `active == 0` mean "drained" rather than "not started yet".
    seeded: AtomicBool,
    /// Terminal state: drained, or poisoned by a panic.
    done: AtomicBool,
    idle: Mutex<()>,
    wake: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<'env> Shared<'env> {
    fn new(workers: usize) -> Self {
        Shared {
            injector: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            active: AtomicUsize::new(0),
            seeded: AtomicBool::new(false),
            done: AtomicBool::new(false),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn poison(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
        drop(slot);
        self.done.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    fn job_finished(&self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 && self.seeded.load(Ordering::Acquire) {
            self.done.store(true, Ordering::Release);
            self.wake.notify_all();
        }
    }
}

/// Handle the seeding closure receives: submit root jobs into the
/// global priority injector.
pub struct Scope<'a, 'env> {
    shared: &'a Shared<'env>,
}

impl<'env> Scope<'_, 'env> {
    /// Submit a root job. Higher `priority` jobs start first; equal
    /// priorities start in submission order.
    pub fn submit(&self, priority: u64, job: impl FnOnce(Ctx<'_, 'env>) + Send + 'env) {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        self.shared.injector.lock().expect("injector poisoned").push(Ranked {
            priority,
            seq,
            submitted_ns: melreq_prof::now_ns(),
            job: Box::new(job),
        });
        self.shared.wake.notify_all();
    }
}

/// Handle a running job receives: fork children onto the current
/// worker's local deque (popped LIFO locally, stolen FIFO by idle
/// siblings).
pub struct Ctx<'a, 'env> {
    shared: &'a Shared<'env>,
    worker: usize,
}

impl<'env> Ctx<'_, 'env> {
    /// Fork a child job from inside a running job.
    pub fn fork(&self, job: impl FnOnce(Ctx<'_, 'env>) + Send + 'env) {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        self.shared.locals[self.worker]
            .lock()
            .expect("local deque poisoned")
            .push_back(Forked { submitted_ns: melreq_prof::now_ns(), job: Box::new(job) });
        self.shared.wake.notify_all();
    }

    /// Index of the worker running this job (0-based; diagnostic only).
    pub fn worker(&self) -> usize {
        self.worker
    }
}

fn take_job<'env>(shared: &Shared<'env>, idx: usize) -> Option<Taken<'env>> {
    if let Some(forked) = shared.locals[idx].lock().expect("local deque poisoned").pop_back() {
        return Some(Taken {
            job: forked.job,
            submitted_ns: forked.submitted_ns,
            root: None,
            stolen: false,
        });
    }
    if let Some(ranked) = shared.injector.lock().expect("injector poisoned").pop() {
        return Some(Taken {
            job: ranked.job,
            submitted_ns: ranked.submitted_ns,
            root: Some((ranked.priority, ranked.seq)),
            stolen: false,
        });
    }
    let n = shared.locals.len();
    for off in 1..n {
        let victim = (idx + off) % n;
        if let Some(forked) =
            shared.locals[victim].lock().expect("local deque poisoned").pop_front()
        {
            return Some(Taken {
                job: forked.job,
                submitted_ns: forked.submitted_ns,
                root: None,
                stolen: true,
            });
        }
    }
    None
}

fn worker_loop(shared: &Shared<'_>, idx: usize) {
    melreq_prof::set_thread_track(|| format!("worker {idx}"));
    loop {
        if shared.done.load(Ordering::Acquire) {
            break;
        }
        if let Some(taken) = take_job(shared, idx) {
            let start_ns = melreq_prof::now_ns();
            let Taken { job, submitted_ns, root, stolen } = taken;
            let outcome = catch_unwind(AssertUnwindSafe(|| job(Ctx { shared, worker: idx })));
            let mut args = [("", 0u64); 3];
            let mut nargs = 0;
            if start_ns >= submitted_ns {
                args[nargs] = ("queue_ns", start_ns - submitted_ns);
                nargs += 1;
            }
            if stolen {
                args[nargs] = ("steal", 1);
                nargs += 1;
            }
            if let Some((priority, _)) = root {
                args[nargs] = ("prio", priority);
                nargs += 1;
            }
            melreq_prof::record(
                "exec.job",
                || match root {
                    Some((_, seq)) => format!("root #{seq}"),
                    None => "fork".to_string(),
                },
                start_ns,
                melreq_prof::now_ns(),
                &args[..nargs],
            );
            if let Err(payload) = outcome {
                shared.poison(payload);
            }
            shared.job_finished();
        } else {
            let guard = shared.idle.lock().expect("idle lock poisoned");
            if shared.done.load(Ordering::Acquire) {
                break;
            }
            // The timeout bounds the race between a failed scan and a
            // concurrent submit (a missed notify costs at most one tick,
            // against jobs that run for milliseconds to seconds).
            let _unused = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(2))
                .expect("idle lock poisoned while waiting");
        }
    }
    // Joining a scoped thread does not wait for TLS destructors, so the
    // recorder must flush here — not in Drop — or [`melreq_prof::drain`]
    // on the caller can race the flush and lose this worker's spans.
    melreq_prof::flush_thread();
}

/// Run a job pool with `workers` worker threads (clamped to at least
/// one). `seed` submits the root jobs; the call returns once every
/// submitted and forked job has finished. If a job or the seeder
/// panicked, the pool drains and the first panic is re-thrown here.
pub fn run_scope<'env>(workers: usize, seed: impl FnOnce(&Scope<'_, 'env>)) {
    let workers = workers.max(1);
    let shared = Shared::new(workers);
    std::thread::scope(|s| {
        for i in 0..workers {
            let shared = &shared;
            s.spawn(move || worker_loop(shared, i));
        }
        let seeded = catch_unwind(AssertUnwindSafe(|| seed(&Scope { shared: &shared })));
        shared.seeded.store(true, Ordering::Release);
        match seeded {
            Err(payload) => shared.poison(payload),
            Ok(()) => {
                if shared.active.load(Ordering::Acquire) == 0 {
                    shared.done.store(true, Ordering::Release);
                }
                shared.wake.notify_all();
            }
        }
    });
    let payload = shared.panic.lock().expect("panic slot poisoned").take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn runs_every_submitted_job_once() {
        for workers in [1, 2, 8] {
            let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
            run_scope(workers, |scope| {
                for slot in &hits {
                    scope.submit(0, move |_ctx| {
                        slot.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "every job runs exactly once at {workers} workers"
            );
        }
    }

    #[test]
    fn forked_children_all_run() {
        for workers in [1, 3] {
            let count = AtomicUsize::new(0);
            run_scope(workers, |scope| {
                for _ in 0..4 {
                    scope.submit(0, |ctx| {
                        count.fetch_add(1, Ordering::Relaxed);
                        for _ in 0..5 {
                            ctx.fork(|_ctx| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 4 * 6, "at {workers} workers");
        }
    }

    #[test]
    fn grandchildren_run_too() {
        let count = AtomicUsize::new(0);
        run_scope(2, |scope| {
            scope.submit(0, |ctx| {
                ctx.fork(|ctx| {
                    ctx.fork(|_ctx| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn injector_orders_by_priority_then_submission() {
        // A gate job occupies the single worker while the remaining jobs
        // are submitted, so the injector's pop order is observable.
        let released = AtomicBool::new(false);
        let order = Mutex::new(Vec::new());
        run_scope(1, |scope| {
            scope.submit(u64::MAX, |_ctx| {
                while !released.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            });
            for (priority, tag) in [(2u64, "2a"), (8, "8a"), (2, "2b"), (8, "8b"), (4, "4a")] {
                let order = &order;
                scope.submit(priority, move |_ctx| {
                    order.lock().unwrap().push(tag);
                });
            }
            released.store(true, Ordering::Release);
        });
        assert_eq!(*order.lock().unwrap(), vec!["8a", "8b", "4a", "2a", "2b"]);
    }

    #[test]
    fn empty_seed_returns() {
        run_scope(4, |_scope| {});
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_scope(2, |scope| {
                scope.submit(0, |_ctx| panic!("job exploded"));
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "job exploded");
    }

    #[test]
    fn seeder_panic_propagates_to_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_scope(2, |scope| {
                scope.submit(0, |_ctx| {});
                panic!("seed exploded");
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn profiled_pool_records_job_spans_per_worker() {
        // Other tests in this binary may run pools concurrently while
        // profiling is on; assertions are presence-based (>=), never
        // exact counts, so extra spans from neighbors cannot fail us.
        melreq_prof::enable();
        let count = AtomicUsize::new(0);
        run_scope(2, |scope| {
            for _ in 0..4 {
                scope.submit(3, |ctx| {
                    count.fetch_add(1, Ordering::Relaxed);
                    ctx.fork(|_ctx| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        melreq_prof::disable();
        let p = melreq_prof::drain();
        assert_eq!(count.load(Ordering::Relaxed), 8);
        // A worker that happened to run zero jobs flushes no track, so
        // assert the labeling scheme, not a specific worker index.
        assert!(
            p.tracks.iter().any(|t| t.label.starts_with("worker ")),
            "worker threads label their tracks"
        );
        let jobs: Vec<_> =
            p.tracks.iter().flat_map(|t| t.spans.iter()).filter(|s| s.cat == "exec.job").collect();
        assert!(jobs.len() >= 8, "one span per submitted and forked job");
        assert!(jobs.iter().any(|s| s.arg("prio") == Some(3)), "roots carry their priority");
        assert!(jobs.iter().all(|s| s.arg("queue_ns").is_some()), "queue wait attributed");
    }

    #[test]
    fn jobs_may_borrow_the_callers_stack() {
        let inputs = [1u64, 2, 3, 4];
        let slots: Vec<Mutex<Option<u64>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
        run_scope(2, |scope| {
            for (i, v) in inputs.iter().enumerate() {
                let slot = &slots[i];
                scope.submit(0, move |_ctx| {
                    *slot.lock().unwrap() = Some(v * 10);
                });
            }
        });
        let out: Vec<u64> = slots.iter().map(|s| s.lock().unwrap().unwrap()).collect();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
