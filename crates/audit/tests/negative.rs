//! Negative tests: the oracle must have teeth.
//!
//! Each test drives the *real* memory controller with the recorder
//! attached, captures a legal event stream, then injects one illegal
//! mutation and asserts the auditor reports exactly the violation kind
//! that mutation corresponds to. A final property test randomizes the
//! mutation site and magnitude.

use melreq_audit::{
    AuditEvent, AuditHandle, AuditReport, AuditSink, Auditor, AuditorConfig, Recorder,
    ViolationKind,
};
use melreq_dram::{DramGeometry, DramSystem, DramTiming};
use melreq_memctrl::controller::ControllerConfig;
use melreq_memctrl::policy::PolicyKind;
use melreq_memctrl::MemoryController;
use melreq_stats::types::{AccessKind, CoreId};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Drive a real controller under `policy` for `cycles` cycles of synthetic
/// traffic and return the recorded audit stream.
fn drive(policy: &PolicyKind, cores: usize, cycles: u64, seed: u64) -> Vec<AuditEvent> {
    drive_on(DramSystem::paper(), policy, cores, cycles, seed)
}

/// Like [`drive`] but with every optional DDR2 constraint enabled, so the
/// stream carries refreshes and activate-window pressure.
fn drive_full_timing(policy: &PolicyKind, cores: usize, cycles: u64, seed: u64) -> Vec<AuditEvent> {
    let timing = DramTiming::ddr2_800_at_3_2ghz().with_refresh().with_activation_windows();
    drive_on(DramSystem::new(DramGeometry::paper(), timing), policy, cores, cycles, seed)
}

fn drive_on(
    dram: DramSystem,
    policy: &PolicyKind,
    cores: usize,
    cycles: u64,
    seed: u64,
) -> Vec<AuditEvent> {
    let me: Vec<f64> = (0..cores).map(|i| 1.0 + 2.0 * i as f64).collect();
    let mut ctrl = MemoryController::new(
        ControllerConfig::paper(),
        dram,
        policy.build(&me, cores, seed),
        policy.read_first(),
        cores,
    );
    let rec = Arc::new(Mutex::new(Recorder::default()));
    let sink: Arc<Mutex<dyn AuditSink>> = rec.clone();
    ctrl.attach_audit(AuditHandle::from_shared(sink, true));
    if matches!(policy, PolicyKind::MeLreq) {
        // Publish the profile on the stream (and reprogram the table
        // consistently) so the table-consistency check engages.
        ctrl.update_profile(&me);
    }
    // Deterministic mixed traffic with row locality: a handful of pages
    // per core, several lines per page, ~1/4 writes.
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        rng >> 33
    };
    for now in 0..cycles {
        for c in 0..cores {
            if next() % 7 < 2 && ctrl.can_accept() {
                let page = next() % 12;
                let line = next() % 32;
                let addr = (c as u64) * (1 << 26) + page * (1 << 13) + line * 64;
                let kind = if next() % 4 == 0 { AccessKind::Write } else { AccessKind::Read };
                ctrl.submit(CoreId::from(c), addr, kind, now);
            }
        }
        ctrl.tick(now);
        while ctrl.pop_completed(now).is_some() {}
    }
    let events = rec.lock().expect("recorder poisoned").events.clone();
    events
}

/// Replay a (possibly mutated) stream through a fresh auditor.
fn audit(events: &[AuditEvent]) -> AuditReport {
    let mut a = Auditor::new(AuditorConfig::default());
    for ev in events {
        a.record(ev);
    }
    a.report()
}

fn has(report: &AuditReport, kind: ViolationKind) -> bool {
    report.counts.iter().any(|(k, _)| *k == kind)
}

fn first_grant(events: &[AuditEvent]) -> usize {
    events
        .iter()
        .position(|e| matches!(e, AuditEvent::Grant { .. }))
        .expect("stream contains grants")
}

#[test]
fn legal_streams_are_clean_for_every_policy() {
    for policy in [
        PolicyKind::Fcfs,
        PolicyKind::FcfsRf,
        PolicyKind::HfRf,
        PolicyKind::RoundRobin,
        PolicyKind::Lreq,
        PolicyKind::Me,
        PolicyKind::MeLreq,
    ] {
        let events = drive(&policy, 4, 20_000, 7);
        assert!(
            events.iter().any(|e| matches!(e, AuditEvent::Grant { .. })),
            "{policy:?}: traffic must reach DRAM"
        );
        let report = audit(&events);
        assert!(report.is_clean(), "{policy:?} must audit clean:\n{}", report.render());
    }
}

#[test]
fn identical_seeds_replay_to_identical_hashes() {
    let a = audit(&drive(&PolicyKind::MeLreq, 4, 15_000, 42));
    let b = audit(&drive(&PolicyKind::MeLreq, 4, 15_000, 42));
    assert_eq!(a.stream_hash, b.stream_hash);
    let c = audit(&drive(&PolicyKind::MeLreq, 4, 15_000, 43));
    assert_ne!(a.stream_hash, c.stream_hash, "different traffic must fingerprint differently");
}

#[test]
fn shrunk_data_ready_is_data_too_early() {
    // The first grant of the run hits a cold bank and an idle bus, so its
    // data timing is bank-limited: any claimed early delivery is exactly
    // DataTooEarly.
    let mut events = drive(&PolicyKind::HfRf, 2, 10_000, 1);
    let i = first_grant(&events);
    let AuditEvent::Grant { data_ready, .. } = &mut events[i] else { unreachable!() };
    *data_ready -= 1;
    let report = audit(&events);
    assert!(has(&report, ViolationKind::DataTooEarly), "got:\n{}", report.render());
    assert_eq!(report.total_violations, 1, "one mutation, one violation:\n{}", report.render());
}

#[test]
fn inflated_data_ready_is_data_mismatch() {
    let mut events = drive(&PolicyKind::HfRf, 2, 10_000, 1);
    let i = first_grant(&events);
    let AuditEvent::Grant { data_ready, .. } = &mut events[i] else { unreachable!() };
    *data_ready += 13;
    let report = audit(&events);
    assert!(has(&report, ViolationKind::DataMismatch), "got:\n{}", report.render());
    assert_eq!(report.total_violations, 1, "got:\n{}", report.render());
}

#[test]
fn flipped_outcome_is_outcome_mismatch() {
    let mut events = drive(&PolicyKind::HfRf, 2, 10_000, 1);
    let i = first_grant(&events);
    let AuditEvent::Grant { outcome, .. } = &mut events[i] else { unreachable!() };
    assert_eq!(*outcome, melreq_audit::GrantOutcome::ClosedMiss, "cold bank");
    *outcome = melreq_audit::GrantOutcome::Hit;
    let report = audit(&events);
    assert!(has(&report, ViolationKind::OutcomeMismatch), "got:\n{}", report.render());
    assert_eq!(report.total_violations, 1, "got:\n{}", report.render());
}

#[test]
fn duplicated_grant_is_bank_busy() {
    let mut events = drive(&PolicyKind::HfRf, 2, 10_000, 1);
    let i = first_grant(&events);
    let dup = events[i].clone();
    events.insert(i + 1, dup);
    let report = audit(&events);
    assert!(has(&report, ViolationKind::BankBusy), "got:\n{}", report.render());
}

#[test]
fn early_grant_during_refresh_window_is_bank_busy() {
    // Pull a later grant back in time to a cycle where its bank was
    // mid-refresh; the replica's ready horizon must reject it.
    let events = drive_full_timing(&PolicyKind::HfRf, 2, 60_000, 3);
    assert!(
        events.iter().any(|e| matches!(e, AuditEvent::Refresh { .. })),
        "a 60k-cycle run must cross a tREFI boundary"
    );
    let mut mutated = events.clone();
    let i = mutated
        .iter()
        .position(|e| matches!(e, AuditEvent::Grant { requested_at, .. } if *requested_at > 25_000))
        .expect("grants after the first refresh");
    let AuditEvent::Grant { requested_at, granted_at, data_ready, .. } = &mut mutated[i] else {
        unreachable!()
    };
    let shift = *granted_at - 24_970; // inside refresh #1 (tRFC = 336)
    *granted_at -= shift;
    *requested_at = (*requested_at).min(*granted_at);
    *data_ready -= shift;
    let report = audit(&mutated);
    assert!(has(&report, ViolationKind::BankBusy), "got:\n{}", report.render());
}

#[test]
fn displaced_refresh_is_refresh_bad() {
    let mut events = drive_full_timing(&PolicyKind::HfRf, 2, 60_000, 3);
    let i = events
        .iter()
        .position(|e| matches!(e, AuditEvent::Refresh { .. }))
        .expect("stream contains refreshes");
    let AuditEvent::Refresh { at, .. } = &mut events[i] else { unreachable!() };
    *at += 8;
    let report = audit(&events);
    assert!(has(&report, ViolationKind::RefreshBad), "got:\n{}", report.render());
}

#[test]
fn dropped_refresh_is_refresh_missed() {
    let mut events = drive_full_timing(&PolicyKind::HfRf, 2, 60_000, 3);
    let i = events
        .iter()
        .position(|e| matches!(e, AuditEvent::Refresh { .. }))
        .expect("stream contains refreshes");
    events.remove(i);
    let report = audit(&events);
    assert!(has(&report, ViolationKind::RefreshMissed), "got:\n{}", report.render());
}

#[test]
fn foreign_chosen_id_is_chosen_not_candidate() {
    let mut events = drive(&PolicyKind::HfRf, 2, 10_000, 5);
    let i = events
        .iter()
        .position(|e| matches!(e, AuditEvent::Decision { .. }))
        .expect("stream contains decisions");
    let AuditEvent::Decision { chosen, .. } = &mut events[i] else { unreachable!() };
    *chosen = u64::MAX;
    let report = audit(&events);
    assert!(has(&report, ViolationKind::ChosenNotCandidate), "got:\n{}", report.render());
}

#[test]
fn hit_first_inversion_is_caught() {
    // Find a decision whose chosen core also queued a non-hit read and
    // whose grant was a row hit; granting the non-hit instead violates
    // the within-core hit-first order (and nothing else, since the core
    // choice is unchanged).
    let mut events = drive(&PolicyKind::Lreq, 2, 30_000, 9);
    let mut site = None;
    for (i, ev) in events.iter().enumerate() {
        let AuditEvent::Decision { chosen, candidates, .. } = ev else {
            continue;
        };
        let Some(ch) = candidates.iter().find(|c| c.id == *chosen) else {
            continue;
        };
        if !ch.row_hit || ch.write {
            continue;
        }
        if let Some(alt) =
            candidates.iter().find(|c| c.core == ch.core && !c.row_hit && !c.write && c.id != ch.id)
        {
            site = Some((i, alt.id));
            break;
        }
    }
    let (i, alt_id) = site.expect("traffic with row locality must hit this pattern");
    let AuditEvent::Decision { chosen, .. } = &mut events[i] else { unreachable!() };
    *chosen = alt_id;
    let report = audit(&events);
    assert!(has(&report, ViolationKind::HitFirstViolated), "got:\n{}", report.render());
}

#[test]
fn corrupted_profile_is_table_inconsistent() {
    // Reverse the published ME profile: the auditor's independently
    // quantized priority table now disagrees with the policy's, so some
    // decision must pick a core the (mutated) table ranks below another.
    let mut events = drive(&PolicyKind::MeLreq, 4, 30_000, 11);
    let i = events
        .iter()
        .position(|e| matches!(e, AuditEvent::ProfileUpdate { .. }))
        .expect("MeLreq stream carries the profile");
    let AuditEvent::ProfileUpdate { me } = &mut events[i] else { unreachable!() };
    me.reverse();
    let report = audit(&events);
    assert!(has(&report, ViolationKind::TableInconsistent), "got:\n{}", report.render());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomly violate one timing constraint on the run's first grant
    /// (bank-limited by construction) and demand exactly the matching
    /// violation kind.
    #[test]
    fn random_single_timing_mutation_is_precisely_classified(
        which in 0usize..3,
        magnitude in 1u64..64,
    ) {
        let mut events = drive(&PolicyKind::HfRf, 2, 8_000, 1);
        let i = first_grant(&events);
        let expected = {
            let AuditEvent::Grant { data_ready, outcome, .. } = &mut events[i] else {
                unreachable!()
            };
            match which {
                0 => {
                    *data_ready -= magnitude.min(79); // stay > requested_at
                    ViolationKind::DataTooEarly
                }
                1 => {
                    *data_ready += magnitude;
                    ViolationKind::DataMismatch
                }
                _ => {
                    *outcome = melreq_audit::GrantOutcome::Conflict;
                    ViolationKind::OutcomeMismatch
                }
            }
        };
        let report = audit(&events);
        prop_assert_eq!(report.total_violations, 1);
        prop_assert!(
            has(&report, expected),
            "expected {:?}, got:\n{}", expected, report.render()
        );
    }
}
