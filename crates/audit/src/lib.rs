//! # melreq-audit — independent legality checking for the simulator
//!
//! This crate re-derives, from an event stream alone, whether everything
//! the `melreq` simulator did was legal. It deliberately shares no
//! state-machine code with `melreq-dram` or `melreq-memctrl`: the DRAM
//! timing rules (tRCD, tCL, tRP, tWR, tRRD, tFAW, tREFI/tRFC, data-bus
//! exclusivity) and the scheduler invariants (candidate issuability,
//! hit-first-then-oldest, read-first/write-drain class discipline, the
//! ME-LREQ priority-table semantics of Zheng et al., ICPP 2008) are
//! implemented a second time here, so a bug in the production model
//! cannot mask itself in the checker.
//!
//! Three checkers share one event stream:
//!
//! * [`TimingOracle`] — per-bank replay of the DDR2 protocol;
//! * [`PolicyAuditor`] — per-decision replay of the scheduling rules;
//! * the stream hash in [`Auditor`] — a determinism witness: two runs
//!   with the same seed must produce identical hashes.
//!
//! The simulator emits events through an [`AuditHandle`] (a no-op unless
//! a sink is attached; debug builds attach a panicking watchdog
//! automatically). `melreq audit` and the `--audit` flag on the CLI run
//! the full checker end to end.

pub mod auditor;
pub mod event;
pub mod oracle;
pub mod policy;

pub use auditor::{AuditReport, Auditor, AuditorConfig};
pub use event::{
    AuditEvent, AuditHandle, AuditSink, CandidateInfo, GrantOutcome, Recorder, TimingParams,
};
pub use oracle::{GrantFacts, TimingOracle, Violation, ViolationKind};
pub use policy::{DecisionFacts, PolicyAuditor};
