//! The policy auditor: scheduler-invariant checks on `Decision` events.
//!
//! For every grant the controller makes, the auditor re-derives — from
//! the candidate set the controller itself reported — which requests the
//! configured policy was *allowed* to choose, and flags decisions outside
//! that set. The ranking rules are re-implemented here from the paper
//! (Zheng et al., ICPP 2008, Sections 2–3 and Figure 1), not imported
//! from `melreq-memctrl`, so a bug in the production policy code cannot
//! hide itself.

use crate::event::CandidateInfo;
use crate::oracle::{TimingOracle, Violation, ViolationKind};
use melreq_stats::types::Cycle;
use std::collections::BTreeSet;

/// Entries and width of the per-core priority table (Section 3.2: 64
/// pending counts × 10 bits). Deliberately hard-coded rather than shared
/// with `melreq-memctrl`: if the implementation drifts from the paper's
/// hardware cost claim, the audit should fail, not follow.
const TABLE_MAX_PENDING: u32 = 64;
const TABLE_PRIORITY_MAX: f64 = 1023.0;

/// Independent re-derivation of the ME-LREQ table entry
/// `quantize(ME[core] / pending)` in the log domain (see
/// `melreq-memctrl`'s table module for the rationale; the math here must
/// agree bit-for-bit with the table the OS would program).
fn melreq_priority(me: &[f64], core: usize, pending: u32) -> u16 {
    let finite = |v: f64| v.is_finite() && v > 0.0;
    let lmax =
        me.iter().copied().filter(|&v| finite(v)).fold(f64::NEG_INFINITY, |a, v| a.max(v.log2()));
    let lmin = me
        .iter()
        .copied()
        .filter(|&v| finite(v))
        .fold(f64::INFINITY, |a, v| a.min((v / f64::from(TABLE_MAX_PENDING)).log2()));
    let scale =
        if lmax.is_finite() && lmax > lmin { TABLE_PRIORITY_MAX / (lmax - lmin) } else { 1.0 };
    let p = pending.clamp(1, TABLE_MAX_PENDING);
    let v = me[core] / f64::from(p);
    if !v.is_finite() {
        return if v > 0.0 { TABLE_PRIORITY_MAX as u16 } else { 0 };
    }
    if v <= 0.0 || !lmax.is_finite() {
        return 0;
    }
    ((v.log2() - lmin) * scale).round().clamp(0.0, TABLE_PRIORITY_MAX) as u16
}

/// The ME fixed-priority ranking: cores ordered by descending profiled
/// ME, ties to the lower core id; `rank[core]`, 0 = highest.
fn me_ranks(me: &[f64]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..me.len()).collect();
    order.sort_by(|&a, &b| {
        me[b].partial_cmp(&me[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut rank = vec![0u32; me.len()];
    for (pos, &core) in order.iter().enumerate() {
        rank[core] = pos as u32;
    }
    rank
}

/// Hit-first-then-oldest key (smaller = preferred).
fn hf_key(c: &CandidateInfo) -> (bool, u64) {
    (!c.row_hit, c.id)
}

/// Fallback parameter values used when a parameterized policy's stream
/// carries no `PolicyParams` event. Deliberately hard-coded (not imported
/// from `melreq-memctrl`): if the registry's defaults drift, the audit
/// should fail, not follow.
const BLISS_DEFAULT_THRESHOLD: u64 = 4;
const BLISS_DEFAULT_CLEAR: u64 = 10_000;
const TCM_DEFAULT_QUANTUM: u64 = 2_000;

/// Independent re-derivation of the TCM two-cluster ranking: cores at or
/// below the mean read count form the latency cluster (ascending reads,
/// ties to the lower id); the bandwidth cluster follows, its ascending
/// order rotated left by `shuffle` positions.
fn tcm_ranks(interval_reads: &[u64], shuffle: u64) -> Vec<u32> {
    let cores = interval_reads.len();
    let total: u64 = interval_reads.iter().sum();
    let mean = total / cores as u64;
    let mut latency: Vec<usize> = (0..cores).filter(|&c| interval_reads[c] <= mean).collect();
    let mut bandwidth: Vec<usize> = (0..cores).filter(|&c| interval_reads[c] > mean).collect();
    latency.sort_by_key(|&c| (interval_reads[c], c));
    bandwidth.sort_by_key(|&c| (interval_reads[c], c));
    if !bandwidth.is_empty() {
        let by = usize::try_from(shuffle % bandwidth.len() as u64).expect("rotation < len");
        bandwidth.rotate_left(by);
    }
    let mut rank = vec![0u32; cores];
    for (pos, &core) in latency.iter().chain(bandwidth.iter()).enumerate() {
        rank[core] = pos as u32;
    }
    rank
}

/// Everything a `Decision` event carries, destructured.
#[derive(Debug)]
pub struct DecisionFacts<'a> {
    /// Channel decided on.
    pub channel: usize,
    /// Scheduling cycle.
    pub at: Cycle,
    /// Write-drain mode flag.
    pub draining: bool,
    /// Chosen request id.
    pub chosen: u64,
    /// Candidate set the controller reported.
    pub candidates: &'a [CandidateInfo],
    /// Per-core pending-read counts the policy saw.
    pub pending_reads: &'a [u32],
}

/// Replays `Decision` events against the configured policy's rules.
#[derive(Debug, Clone, Default)]
pub struct PolicyAuditor {
    cores: usize,
    policy: &'static str,
    read_first: bool,
    overhead: Cycle,
    configured: bool,
    /// First profile seen — what the ME fixed ranking was built from.
    me_first: Option<Vec<f64>>,
    /// Latest profile — what ME-LREQ's tables currently hold.
    me_latest: Option<Vec<f64>>,
    /// Round-Robin rotation pointer replica.
    rr_next: usize,
    /// Tunable parameters announced via `PolicyParams` (empty until one
    /// is seen; lookups fall back to the hard-coded defaults above).
    params: Vec<(&'static str, u64)>,
    /// BLISS replica: per-core blacklist bits.
    bliss_blacklisted: Vec<bool>,
    /// BLISS replica: the core owning the current grant streak.
    bliss_last_core: Option<u16>,
    /// BLISS replica: consecutive-grant streak length.
    bliss_streak: u64,
    /// BLISS replica: grants since the blacklist was last cleared.
    bliss_grants: u64,
    /// TCM replica: reads granted per core during the current quantum.
    tcm_reads: Vec<u64>,
    /// TCM replica: grants observed in the current quantum.
    tcm_grants: u64,
    /// TCM replica: current rank vector (`rank[core]`, 0 = highest).
    tcm_rank: Vec<u32>,
    /// TCM replica: monotone shuffle counter.
    tcm_shuffle: u64,
    /// Reads submitted minus reads granted, per core.
    reads_outstanding: Vec<i64>,
    /// Age cap (cycles) past which a candidate counts as starved.
    starvation_cap: Cycle,
    /// Ids already reported as starved (one report per request).
    starved: BTreeSet<u64>,
}

impl PolicyAuditor {
    /// An unconfigured auditor with the given starvation cap.
    pub fn new(starvation_cap: Cycle) -> Self {
        PolicyAuditor { starvation_cap, ..Self::default() }
    }

    /// Apply a `CtrlConfig`. The first one configures the auditor; a
    /// later one is a *reconfiguration* — the controller swapped its
    /// scheduling policy mid-run (warmup sharing) — so the policy model
    /// resets to the new policy's initial state (rotation pointer at
    /// core 0, no profile seen yet) while the request-history replicas
    /// survive: the shared buffer is not cleared by a policy swap, and
    /// the outstanding-read counts must keep matching the submit/grant
    /// history.
    pub fn on_config(
        &mut self,
        cores: usize,
        policy: &'static str,
        read_first: bool,
        overhead: Cycle,
    ) {
        if !self.configured || self.cores != cores {
            self.reads_outstanding = vec![0; cores];
        }
        self.cores = cores;
        self.policy = policy;
        self.read_first = read_first;
        self.overhead = overhead;
        self.rr_next = 0;
        self.me_first = None;
        self.me_latest = None;
        self.params = Vec::new();
        self.bliss_blacklisted = vec![false; cores];
        self.bliss_last_core = None;
        self.bliss_streak = 0;
        self.bliss_grants = 0;
        self.tcm_reads = vec![0; cores];
        self.tcm_grants = 0;
        self.tcm_rank = vec![0; cores];
        self.tcm_shuffle = 0;
        self.configured = true;
    }

    /// Apply a `PolicyParams` announcement (the active policy's tunable
    /// parameters, emitted right after its `CtrlConfig`).
    pub fn on_params(&mut self, params: &[(&'static str, u64)]) {
        self.params = params.to_vec();
    }

    /// The announced value of parameter `key`, or `default` when the
    /// stream never announced one.
    fn param(&self, key: &str, default: u64) -> u64 {
        self.params.iter().find(|(k, _)| *k == key).map_or(default, |(_, v)| *v)
    }

    /// Apply a `ProfileUpdate`.
    pub fn on_profile(&mut self, me: &[f64]) {
        if self.me_first.is_none() {
            self.me_first = Some(me.to_vec());
        }
        self.me_latest = Some(me.to_vec());
    }

    /// Observe a `Submit` (tracks per-core outstanding reads).
    pub fn on_submit(&mut self, core: u16, write: bool) {
        if !write {
            if let Some(n) = self.reads_outstanding.get_mut(core as usize) {
                *n += 1;
            }
        }
    }

    /// Observe a `Grant` (the request leaves the queue). Read grants are
    /// exactly the policy-selected ones (writes drain outside the
    /// policy), so the BLISS/TCM grant-history replicas advance here.
    pub fn on_grant(&mut self, core: u16, write: bool) {
        if write {
            return;
        }
        if let Some(n) = self.reads_outstanding.get_mut(core as usize) {
            *n -= 1;
        }
        match self.policy {
            "BLISS" => {
                if self.bliss_last_core == Some(core) {
                    self.bliss_streak += 1;
                } else {
                    self.bliss_last_core = Some(core);
                    self.bliss_streak = 1;
                }
                if self.bliss_streak >= self.param("threshold", BLISS_DEFAULT_THRESHOLD) {
                    if let Some(b) = self.bliss_blacklisted.get_mut(usize::from(core)) {
                        *b = true;
                    }
                }
                self.bliss_grants += 1;
                if self.bliss_grants >= self.param("clear", BLISS_DEFAULT_CLEAR) {
                    self.bliss_blacklisted.iter_mut().for_each(|b| *b = false);
                    self.bliss_grants = 0;
                }
            }
            "TCM" => {
                if let Some(r) = self.tcm_reads.get_mut(usize::from(core)) {
                    *r += 1;
                }
                self.tcm_grants += 1;
                if self.tcm_grants >= self.param("quantum", TCM_DEFAULT_QUANTUM) {
                    self.tcm_rank = tcm_ranks(&self.tcm_reads, self.tcm_shuffle);
                    self.tcm_shuffle += 1;
                    self.tcm_reads.iter_mut().for_each(|r| *r = 0);
                    self.tcm_grants = 0;
                }
            }
            _ => {}
        }
    }

    /// Check one scheduling decision. `oracle` supplies the replayed
    /// bank state for issuability and row-hit verification.
    pub fn on_decision(
        &mut self,
        d: &DecisionFacts<'_>,
        oracle: &TimingOracle,
        out: &mut Vec<Violation>,
    ) {
        let mut push = |kind: ViolationKind, detail: String| {
            out.push(Violation { kind, at: d.at, channel: d.channel, detail });
        };
        if !self.configured {
            push(ViolationKind::StreamInvalid, "decision before CtrlConfig".into());
            return;
        }

        // Pending-read counts must match the submit/grant history.
        if d.pending_reads.len() != self.cores {
            push(
                ViolationKind::PendingMismatch,
                format!(
                    "pending vector covers {} cores, expected {}",
                    d.pending_reads.len(),
                    self.cores
                ),
            );
        } else {
            for (core, (&seen, &derived)) in
                d.pending_reads.iter().zip(&self.reads_outstanding).enumerate()
            {
                if i64::from(seen) != derived {
                    push(
                        ViolationKind::PendingMismatch,
                        format!("core {core}: policy saw {seen} pending reads, history implies {derived}"),
                    );
                }
            }
        }

        // Candidate-level checks: issuability, overhead, row-hit claims,
        // starvation.
        for c in d.candidates {
            if c.arrival + self.overhead > d.at {
                push(
                    ViolationKind::NotIssuable,
                    format!(
                        "req {} offered {} cycles after arrival, overhead is {}",
                        c.id,
                        d.at - c.arrival,
                        self.overhead
                    ),
                );
            }
            if !oracle.can_issue(d.channel, c.bank, d.at) {
                push(
                    ViolationKind::NotIssuable,
                    format!("req {} offered while bank {} is busy", c.id, c.bank),
                );
            }
            let really_hits = oracle.open_row(d.channel, c.bank) == Some(c.row);
            if c.row_hit != really_hits {
                push(
                    ViolationKind::RowHitMismatch,
                    format!(
                        "req {} claims row_hit={}, replay says {}",
                        c.id, c.row_hit, really_hits
                    ),
                );
            }
            if d.at.saturating_sub(c.arrival) > self.starvation_cap && self.starved.insert(c.id) {
                push(
                    ViolationKind::Starvation,
                    format!(
                        "req {} aged {} cycles (cap {})",
                        c.id,
                        d.at - c.arrival,
                        self.starvation_cap
                    ),
                );
            }
        }

        let Some(chosen) = d.candidates.iter().find(|c| c.id == d.chosen) else {
            push(
                ViolationKind::ChosenNotCandidate,
                format!(
                    "granted req {} was not among the {} candidates",
                    d.chosen,
                    d.candidates.len()
                ),
            );
            return;
        };

        if !self.read_first {
            // Plain FCFS: one class, strict arrival order.
            let oldest = d.candidates.iter().map(|c| c.id).min().expect("non-empty");
            if chosen.id != oldest {
                push(
                    ViolationKind::FcfsOrderViolated,
                    format!("granted req {} but req {} is older", chosen.id, oldest),
                );
            }
            return;
        }

        // Read-first class discipline with write-drain hysteresis.
        let has_read = d.candidates.iter().any(|c| !c.write);
        let has_write = d.candidates.iter().any(|c| c.write);
        let want_writes = if d.draining { has_write } else { !has_read && has_write };
        if chosen.write != want_writes {
            push(
                ViolationKind::ClassViolated,
                format!(
                    "granted a {} while {} were required (draining={})",
                    if chosen.write { "write" } else { "read" },
                    if want_writes { "writes" } else { "reads" },
                    d.draining
                ),
            );
            return;
        }

        if want_writes {
            // Writes drain hit-first-then-oldest for every policy.
            let best = d
                .candidates
                .iter()
                .filter(|c| c.write)
                .min_by_key(|c| hf_key(c))
                .expect("write class non-empty");
            if chosen.id != best.id {
                push(
                    ViolationKind::HitFirstViolated,
                    format!("write drain granted req {} over req {}", chosen.id, best.id),
                );
            }
            return;
        }

        let reads: Vec<&CandidateInfo> = d.candidates.iter().filter(|c| !c.write).collect();

        // Within the selected core, the core-selecting schemes serve
        // hit-first-then-oldest (Figure 1: "the first read request of the
        // selected thread"). Not FCFS-RF — it ignores hits by definition —
        // and not extension policies with unknown internal orders.
        let core_selecting = matches!(
            self.policy,
            "HF-RF" | "RR" | "LREQ" | "ME" | "ME-LREQ" | "ME-LREQ-ON" | "TCM"
        ) || self.policy.starts_with("FIX-");
        if core_selecting {
            let best_in_core = reads
                .iter()
                .filter(|c| c.core == chosen.core)
                .min_by_key(|c| hf_key(c))
                .expect("chosen core has a read");
            if chosen.id != best_in_core.id {
                push(
                    ViolationKind::HitFirstViolated,
                    format!(
                        "within core {} req {} beats granted req {}",
                        chosen.core, best_in_core.id, chosen.id
                    ),
                );
            }
        }

        // Core selection per policy.
        let candidate_cores: Vec<u16> = {
            let mut cs: Vec<u16> = reads.iter().map(|c| c.core).collect();
            cs.sort_unstable();
            cs.dedup();
            cs
        };
        let pending_of = |core: u16| d.pending_reads.get(core as usize).copied().unwrap_or(0);
        match self.policy {
            "HF-RF" => {
                let best = reads.iter().min_by_key(|c| hf_key(c)).expect("non-empty");
                if chosen.id != best.id {
                    push(
                        ViolationKind::HitFirstViolated,
                        format!("HF-RF granted req {} over req {}", chosen.id, best.id),
                    );
                }
            }
            "FCFS" => {
                // FCFS-RF: arrival order within the read class.
                let oldest = reads.iter().map(|c| c.id).min().expect("non-empty");
                if chosen.id != oldest {
                    push(
                        ViolationKind::FcfsOrderViolated,
                        format!("FCFS-RF granted req {} but req {} is older", chosen.id, oldest),
                    );
                }
            }
            "RR" => {
                let expect = (0..self.cores)
                    .map(|off| ((self.rr_next + off) % self.cores) as u16)
                    .find(|c| candidate_cores.contains(c))
                    .expect("non-empty");
                if chosen.core != expect {
                    push(
                        ViolationKind::CoreChoiceViolated,
                        format!(
                            "RR pointer at {} demands core {expect}, granted core {}",
                            self.rr_next, chosen.core
                        ),
                    );
                }
                // Track the implementation's pointer, not our expectation,
                // so one violation does not cascade.
                self.rr_next = (usize::from(chosen.core) + 1) % self.cores;
            }
            "LREQ" => {
                let best = candidate_cores
                    .iter()
                    .copied()
                    .min_by_key(|&c| (pending_of(c), c))
                    .expect("non-empty");
                if chosen.core != best {
                    push(
                        ViolationKind::CoreChoiceViolated,
                        format!(
                            "LREQ demands core {best} ({} pending), granted core {} ({} pending)",
                            pending_of(best),
                            chosen.core,
                            pending_of(chosen.core)
                        ),
                    );
                }
            }
            name if name == "ME" || name.starts_with("FIX-") => {
                let ranks = if name == "ME" {
                    self.me_first.as_deref().map(me_ranks)
                } else {
                    // FIX-3210 style: the suffix digits are the core order.
                    name[4..]
                        .chars()
                        .map(|ch| ch.to_digit(10).map(|d| d as usize))
                        .collect::<Option<Vec<usize>>>()
                        .filter(|order| order.len() == self.cores)
                        .map(|order| {
                            let mut rank = vec![u32::MAX; self.cores];
                            for (pos, &core) in order.iter().enumerate() {
                                if let Some(r) = rank.get_mut(core) {
                                    *r = pos as u32;
                                }
                            }
                            rank
                        })
                };
                if let Some(ranks) = ranks {
                    let best = candidate_cores
                        .iter()
                        .copied()
                        .min_by_key(|&c| ranks.get(usize::from(c)).copied().unwrap_or(u32::MAX))
                        .expect("non-empty");
                    if chosen.core != best {
                        push(
                            ViolationKind::CoreChoiceViolated,
                            format!("{name} ranks core {best} first, granted core {}", chosen.core),
                        );
                    }
                }
            }
            "ME-LREQ" | "ME-LREQ-ON" => {
                if let Some(me) = self.me_latest.as_deref() {
                    let prio = |c: u16| melreq_priority(me, usize::from(c), pending_of(c).max(1));
                    let best = candidate_cores.iter().copied().map(&prio).max().expect("non-empty");
                    if prio(chosen.core) != best {
                        push(
                            ViolationKind::TableInconsistent,
                            format!(
                                "granted core {} at table priority {}, but {} was available",
                                chosen.core,
                                prio(chosen.core),
                                best
                            ),
                        );
                    }
                }
            }
            "BLISS" => {
                // Request-level rule: minimize (blacklisted, !row_hit, id).
                let bl = |c: &CandidateInfo| {
                    self.bliss_blacklisted.get(usize::from(c.core)).copied().unwrap_or(false)
                };
                let best = reads.iter().min_by_key(|c| (bl(c), hf_key(c))).expect("non-empty");
                if chosen.id != best.id {
                    let kind = if bl(chosen) != bl(best) {
                        ViolationKind::CoreChoiceViolated
                    } else {
                        ViolationKind::HitFirstViolated
                    };
                    push(
                        kind,
                        format!(
                            "BLISS granted req {} (core {} blacklisted={}) over req {} (core {} blacklisted={})",
                            chosen.id,
                            chosen.core,
                            bl(chosen),
                            best.id,
                            best.core,
                            bl(best)
                        ),
                    );
                }
            }
            "TCM" => {
                let rank_of =
                    |core: u16| self.tcm_rank.get(usize::from(core)).copied().unwrap_or(u32::MAX);
                let best = candidate_cores
                    .iter()
                    .copied()
                    .min_by_key(|&c| (rank_of(c), c))
                    .expect("non-empty");
                if chosen.core != best {
                    push(
                        ViolationKind::CoreChoiceViolated,
                        format!(
                            "TCM ranks core {best} (rank {}) first, granted core {} (rank {})",
                            rank_of(best),
                            chosen.core,
                            rank_of(chosen.core)
                        ),
                    );
                }
            }
            // Extension policies (FQ, STF, ...) get the generic checks only.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TimingParams;

    /// Hit-claiming candidates target bank 1 / row 7, which [`oracle`]
    /// really holds open, so the row-hit cross-check stays quiet and the
    /// tests exercise only the invariant they name.
    fn cand(id: u64, core: u16, write: bool, hit: bool) -> CandidateInfo {
        let (bank, row) = if hit { (1, 7) } else { (0, 0) };
        CandidateInfo { id, core, bank, row, write, row_hit: hit, arrival: 0 }
    }

    fn oracle() -> TimingOracle {
        let mut o = TimingOracle::new();
        o.on_config(1, 8, TimingParams::default());
        let mut sink = Vec::new();
        o.on_grant(
            &crate::oracle::GrantFacts {
                channel: 0,
                bank: 1,
                row: 7,
                write: false,
                requested_at: 0,
                granted_at: 0,
                keep_open: true,
                outcome: crate::event::GrantOutcome::ClosedMiss,
                data_ready: 0,
            },
            &mut sink,
        );
        assert!(sink.is_empty(), "fixture grant must be legal: {sink:?}");
        o
    }

    fn auditor(policy: &'static str, read_first: bool, cores: usize) -> PolicyAuditor {
        let mut a = PolicyAuditor::new(1_000_000);
        a.on_config(cores, policy, read_first, 0);
        a
    }

    fn decide(
        a: &mut PolicyAuditor,
        chosen: u64,
        cands: &[CandidateInfo],
        pending: &[u32],
        draining: bool,
    ) -> Vec<Violation> {
        // Keep the outstanding-read replica consistent with `pending`
        // for the cores the test uses.
        a.reads_outstanding = pending.iter().map(|&p| i64::from(p)).collect();
        let mut v = Vec::new();
        let d = DecisionFacts {
            channel: 0,
            at: 100,
            draining,
            chosen,
            candidates: cands,
            pending_reads: pending,
        };
        a.on_decision(&d, &oracle(), &mut v);
        v
    }

    #[test]
    fn hf_rf_accepts_hit_first_and_flags_inversion() {
        let mut a = auditor("HF-RF", true, 2);
        let cands = [cand(1, 0, false, false), cand(5, 1, false, true)];
        assert!(decide(&mut a, 5, &cands, &[1, 1], false).is_empty());
        let v = decide(&mut a, 1, &cands, &[1, 1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::HitFirstViolated), "{v:?}");
    }

    #[test]
    fn plain_fcfs_order_enforced() {
        let mut a = auditor("FCFS", false, 1);
        let cands = [cand(3, 0, false, true), cand(7, 0, true, false)];
        assert!(decide(&mut a, 3, &cands, &[2], false).is_empty());
        let v = decide(&mut a, 7, &cands, &[2], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::FcfsOrderViolated), "{v:?}");
    }

    #[test]
    fn read_first_class_enforced() {
        let mut a = auditor("HF-RF", true, 1);
        let cands = [cand(1, 0, true, true), cand(2, 0, false, false)];
        // Not draining: the read must win even though the write is a hit.
        let v = decide(&mut a, 1, &cands, &[1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::ClassViolated), "{v:?}");
        // Draining: the write must win.
        let v = decide(&mut a, 2, &cands, &[1], true);
        assert!(v.iter().any(|x| x.kind == ViolationKind::ClassViolated), "{v:?}");
        assert!(decide(&mut a, 1, &cands, &[1], true).is_empty());
    }

    #[test]
    fn chosen_not_candidate_detected() {
        let mut a = auditor("HF-RF", true, 1);
        let cands = [cand(1, 0, false, false)];
        let v = decide(&mut a, 99, &cands, &[1], false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::ChosenNotCandidate);
    }

    #[test]
    fn round_robin_rotation_enforced() {
        let mut a = auditor("RR", true, 4);
        let cands = [cand(0, 0, false, false), cand(1, 1, false, false), cand(2, 3, false, false)];
        let p = [1, 1, 0, 1];
        assert!(decide(&mut a, 0, &cands, &p, false).is_empty()); // pointer 0 → core 0
        assert!(decide(&mut a, 1, &cands, &p, false).is_empty()); // → core 1
                                                                  // Core 2 has no candidate: pointer 2 must skip to core 3.
        let v = decide(&mut a, 0, &cands, &p, false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::CoreChoiceViolated), "{v:?}");
    }

    #[test]
    fn lreq_core_choice_enforced() {
        let mut a = auditor("LREQ", true, 2);
        let cands = [cand(0, 0, false, true), cand(1, 1, false, false)];
        assert!(decide(&mut a, 1, &cands, &[10, 2], false).is_empty());
        let v = decide(&mut a, 0, &cands, &[10, 2], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::CoreChoiceViolated), "{v:?}");
    }

    #[test]
    fn me_and_fix_rankings_enforced() {
        let mut a = auditor("ME", true, 2);
        a.on_profile(&[1.0, 50.0]);
        let cands = [cand(0, 0, false, true), cand(1, 1, false, false)];
        assert!(decide(&mut a, 1, &cands, &[1, 1], false).is_empty());
        let v = decide(&mut a, 0, &cands, &[1, 1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::CoreChoiceViolated), "{v:?}");

        let mut a = auditor("FIX-10", true, 2);
        assert!(decide(&mut a, 1, &cands, &[1, 1], false).is_empty());
        let v = decide(&mut a, 0, &cands, &[1, 1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::CoreChoiceViolated), "{v:?}");
    }

    #[test]
    fn me_lreq_table_consistency() {
        let mut a = auditor("ME-LREQ", true, 2);
        a.on_profile(&[16.0, 4.0]);
        let cands = [cand(0, 0, false, true), cand(1, 1, false, false)];
        // 16/8 = 2 < 4/1 = 4: core 1 must win.
        assert!(decide(&mut a, 1, &cands, &[8, 1], false).is_empty());
        let v = decide(&mut a, 0, &cands, &[8, 1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::TableInconsistent), "{v:?}");
        // At equal pending, higher ME wins.
        assert!(decide(&mut a, 0, &cands, &[2, 2], false).is_empty());
    }

    #[test]
    fn me_lreq_accepts_quantization_ties() {
        let mut a = auditor("ME-LREQ", true, 2);
        // Ratios so close the 10-bit grid collapses them: either core is
        // a legal pick.
        a.on_profile(&[1000.0, 999.99]);
        let cands = [cand(0, 0, false, false), cand(1, 1, false, false)];
        assert!(decide(&mut a, 0, &cands, &[1, 1], false).is_empty());
        assert!(decide(&mut a, 1, &cands, &[1, 1], false).is_empty());
    }

    #[test]
    fn bliss_blacklist_enforced() {
        let mut a = auditor("BLISS", true, 2);
        a.on_params(&[("threshold", 2), ("clear", 1_000)]);
        // Two consecutive read grants to core 0 blacklist it.
        a.on_grant(0, false);
        a.on_grant(0, false);
        assert!(a.bliss_blacklisted[0]);
        let cands = [cand(0, 0, false, true), cand(1, 1, false, false)];
        // Core 1's miss must beat blacklisted core 0's row hit.
        assert!(decide(&mut a, 1, &cands, &[1, 1], false).is_empty());
        let v = decide(&mut a, 0, &cands, &[1, 1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::CoreChoiceViolated), "{v:?}");
        // Among equally non-blacklisted candidates the hit-first order holds.
        a.bliss_blacklisted = vec![false, false];
        let v = decide(&mut a, 0, &cands, &[1, 1], false);
        assert!(v.is_empty(), "{v:?}");
        let v = decide(&mut a, 1, &cands, &[1, 1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::HitFirstViolated), "{v:?}");
    }

    #[test]
    fn bliss_defaults_apply_without_params_event() {
        let mut a = auditor("BLISS", true, 2);
        // Default threshold is 4: three grants must not blacklist.
        for _ in 0..3 {
            a.on_grant(0, false);
        }
        assert!(!a.bliss_blacklisted[0]);
        a.on_grant(0, false);
        assert!(a.bliss_blacklisted[0]);
    }

    #[test]
    fn tcm_rank_enforced_after_recluster() {
        let mut a = auditor("TCM", true, 2);
        a.on_params(&[("quantum", 4)]);
        // One quantum: core 1 heavy (3 reads), core 0 light (1 read).
        a.on_grant(1, false);
        a.on_grant(1, false);
        a.on_grant(1, false);
        a.on_grant(0, false);
        // Mean 2: core 0 forms the latency cluster, core 1 the bandwidth one.
        assert_eq!(a.tcm_rank, vec![0, 1]);
        let cands = [cand(0, 0, false, false), cand(1, 1, false, true)];
        assert!(decide(&mut a, 0, &cands, &[1, 1], false).is_empty());
        let v = decide(&mut a, 1, &cands, &[1, 1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::CoreChoiceViolated), "{v:?}");
    }

    #[test]
    fn tcm_ranks_shuffle_rotates_bandwidth_cluster() {
        // Three heavy cores (1, 2, 3) against one idle core 0.
        let reads = [0u64, 10, 11, 12];
        let r0 = tcm_ranks(&reads, 0);
        let r1 = tcm_ranks(&reads, 1);
        assert_eq!(r0, vec![0, 1, 2, 3]);
        assert_eq!(r1, vec![0, 3, 1, 2]);
        // The latency cluster is untouched by the shuffle.
        assert_eq!(r0[0], r1[0]);
    }

    #[test]
    fn starvation_reported_once() {
        let mut a = auditor("HF-RF", true, 1);
        a.starvation_cap = 10;
        let mut c = cand(0, 0, false, false);
        c.arrival = 0; // decision at 100 → aged 100 > 10
        let v = decide(&mut a, 0, &[c], &[1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::Starvation), "{v:?}");
        let v = decide(&mut a, 0, &[c], &[1], false);
        assert!(!v.iter().any(|x| x.kind == ViolationKind::Starvation), "{v:?}");
    }

    #[test]
    fn reconfig_keeps_history_but_resets_policy_model() {
        // Warm up under HF-RF, accumulate outstanding reads and an ME
        // profile, then swap to RR mid-run.
        let mut a = auditor("HF-RF", true, 2);
        a.on_profile(&[9.0, 1.0]);
        a.on_submit(0, false);
        a.on_submit(0, false);
        a.on_submit(1, false);
        a.on_config(2, "RR", true, 0);
        // History survives the swap...
        assert_eq!(a.reads_outstanding, vec![2, 1]);
        // ...but the policy model is the new policy's initial state.
        assert!(a.me_first.is_none() && a.me_latest.is_none());
        assert_eq!(a.rr_next, 0);
        // The fresh RR pointer demands core 0 first.
        let cands = [cand(0, 0, false, false), cand(1, 1, false, false)];
        assert!(decide(&mut a, 0, &cands, &[1, 1], false).is_empty());
        let v = decide(&mut a, 0, &cands, &[1, 1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::CoreChoiceViolated), "{v:?}");
        // A different core count is a different machine: counts reset.
        a.on_config(4, "HF-RF", true, 0);
        assert_eq!(a.reads_outstanding, vec![0, 0, 0, 0]);
    }

    #[test]
    fn pending_mismatch_detected() {
        let mut a = auditor("HF-RF", true, 2);
        let cands = [cand(0, 0, false, false)];
        let mut v = Vec::new();
        a.reads_outstanding = vec![3, 0];
        let d = DecisionFacts {
            channel: 0,
            at: 100,
            draining: false,
            chosen: 0,
            candidates: &cands,
            pending_reads: &[2, 0],
        };
        a.on_decision(&d, &oracle(), &mut v);
        assert!(v.iter().any(|x| x.kind == ViolationKind::PendingMismatch), "{v:?}");
    }

    #[test]
    fn overhead_not_elapsed_is_not_issuable() {
        let mut a = auditor("HF-RF", true, 1);
        a.overhead = 50;
        let mut c = cand(0, 0, false, false);
        c.arrival = 80; // decision at 100: only 20 < 50 cycles old
        let v = decide(&mut a, 0, &[c], &[1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::NotIssuable), "{v:?}");
    }

    #[test]
    fn row_hit_claim_checked_against_replay() {
        let mut a = auditor("HF-RF", true, 1);
        // Claims a hit on bank 0, which the replay holds closed.
        let c = CandidateInfo {
            id: 0,
            core: 0,
            bank: 0,
            row: 0,
            write: false,
            row_hit: true,
            arrival: 0,
        };
        let v = decide(&mut a, 0, &[c], &[1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::RowHitMismatch), "{v:?}");
        // And the inverse lie: denies the hit bank 1 really has.
        let c = CandidateInfo {
            id: 1,
            core: 0,
            bank: 1,
            row: 7,
            write: false,
            row_hit: false,
            arrival: 0,
        };
        let v = decide(&mut a, 1, &[c], &[1], false);
        assert!(v.iter().any(|x| x.kind == ViolationKind::RowHitMismatch), "{v:?}");
    }
}
