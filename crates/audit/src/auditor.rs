//! The combining sink: timing oracle + policy auditor + stream hash.

use crate::event::{AuditEvent, AuditHandle, AuditSink};
use crate::oracle::{GrantFacts, TimingOracle, Violation, ViolationKind};
use crate::policy::{DecisionFacts, PolicyAuditor};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit, folded over a canonical encoding of the event stream.
/// Two runs of the simulator are byte-identical iff their hashes agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.byte(u8::from(v));
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        for b in s.bytes() {
            self.byte(b);
        }
    }
}

fn fold_event(h: &mut Fnv, ev: &AuditEvent) {
    match ev {
        AuditEvent::DramConfig { channels, banks_per_channel, timing } => {
            h.byte(1);
            h.usize(*channels);
            h.usize(*banks_per_channel);
            for v in [
                timing.t_rcd,
                timing.t_cl,
                timing.t_rp,
                timing.t_wr,
                timing.burst,
                timing.t_refi,
                timing.t_rfc,
                timing.t_rrd,
                timing.t_faw,
            ] {
                h.u64(v);
            }
        }
        AuditEvent::CtrlConfig {
            cores,
            policy,
            read_first,
            buffer_entries,
            drain_start,
            drain_stop,
            overhead,
        } => {
            h.byte(2);
            h.usize(*cores);
            h.str(policy);
            h.bool(*read_first);
            h.usize(*buffer_entries);
            h.usize(*drain_start);
            h.usize(*drain_stop);
            h.u64(*overhead);
        }
        AuditEvent::ProfileUpdate { me } => {
            h.byte(3);
            h.usize(me.len());
            for &v in me {
                h.f64(v);
            }
        }
        AuditEvent::PolicyParams { params } => {
            h.byte(9);
            h.usize(params.len());
            for (k, v) in params {
                h.str(k);
                h.u64(*v);
            }
        }
        AuditEvent::Submit { id, core, channel, bank, row, write, at } => {
            h.byte(4);
            h.u64(*id);
            h.u64(u64::from(*core));
            h.usize(*channel);
            h.usize(*bank);
            h.u64(*row);
            h.bool(*write);
            h.u64(*at);
        }
        AuditEvent::Refresh { channel, at } => {
            h.byte(5);
            h.usize(*channel);
            h.u64(*at);
        }
        AuditEvent::Precharge { channel, bank, at } => {
            h.byte(6);
            h.usize(*channel);
            h.usize(*bank);
            h.u64(*at);
        }
        AuditEvent::Decision { channel, at, draining, chosen, candidates, pending_reads } => {
            h.byte(7);
            h.usize(*channel);
            h.u64(*at);
            h.bool(*draining);
            h.u64(*chosen);
            h.usize(candidates.len());
            for c in candidates {
                h.u64(c.id);
                h.u64(u64::from(c.core));
                h.usize(c.bank);
                h.u64(c.row);
                h.bool(c.write);
                h.bool(c.row_hit);
                h.u64(c.arrival);
            }
            h.usize(pending_reads.len());
            for &p in pending_reads {
                h.u64(u64::from(p));
            }
        }
        AuditEvent::Grant {
            id,
            core,
            channel,
            bank,
            row,
            write,
            requested_at,
            granted_at,
            keep_open,
            outcome,
            data_ready,
        } => {
            h.byte(8);
            h.u64(*id);
            h.u64(u64::from(*core));
            h.usize(*channel);
            h.usize(*bank);
            h.u64(*row);
            h.bool(*write);
            h.u64(*requested_at);
            h.u64(*granted_at);
            h.bool(*keep_open);
            h.byte(match outcome {
                crate::event::GrantOutcome::Hit => 0,
                crate::event::GrantOutcome::ClosedMiss => 1,
                crate::event::GrantOutcome::Conflict => 2,
            });
            h.u64(*data_ready);
        }
    }
}

/// Auditor knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditorConfig {
    /// Age (cycles) past which an ungranted candidate counts as starved.
    pub starvation_cap: u64,
    /// Panic on the first violation (the debug-build watchdog mode)
    /// instead of accumulating a report.
    pub panic_on_violation: bool,
    /// Violations kept verbatim in the report; the rest are counted only.
    pub max_stored: usize,
}

impl Default for AuditorConfig {
    fn default() -> Self {
        AuditorConfig { starvation_cap: 1_000_000, panic_on_violation: false, max_stored: 64 }
    }
}

/// Everything a finished audit knows.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Events observed.
    pub events: u64,
    /// FNV-1a hash of the canonical event stream (determinism check:
    /// same seed ⇒ same hash).
    pub stream_hash: u64,
    /// Total violations detected.
    pub total_violations: u64,
    /// First [`AuditorConfig::max_stored`] violations, verbatim.
    pub violations: Vec<Violation>,
    /// Violation counts by kind.
    pub counts: Vec<(ViolationKind, u64)>,
}

impl AuditReport {
    /// Whether the stream was fully legal.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "audit: {} events, stream hash {:016x}, {} violation(s)\n",
            self.events, self.stream_hash, self.total_violations
        ));
        for (kind, n) in &self.counts {
            s.push_str(&format!("  {kind:?}: {n}\n"));
        }
        for v in &self.violations {
            s.push_str(&format!("  {v}\n"));
        }
        if self.total_violations as usize > self.violations.len() {
            s.push_str(&format!(
                "  ... {} more not stored\n",
                self.total_violations as usize - self.violations.len()
            ));
        }
        s
    }
}

/// The full checker: replays the stream through the [`TimingOracle`] and
/// [`PolicyAuditor`] while hashing it.
#[derive(Debug)]
pub struct Auditor {
    cfg: AuditorConfig,
    oracle: TimingOracle,
    policy: PolicyAuditor,
    hash: Fnv,
    events: u64,
    stored: Vec<Violation>,
    counts: Vec<(ViolationKind, u64)>,
    total: u64,
    scratch: Vec<Violation>,
}

impl Auditor {
    /// A fresh auditor.
    pub fn new(cfg: AuditorConfig) -> Self {
        Auditor {
            cfg,
            oracle: TimingOracle::new(),
            policy: PolicyAuditor::new(cfg.starvation_cap),
            hash: Fnv::new(),
            events: 0,
            stored: Vec::new(),
            counts: Vec::new(),
            total: 0,
            scratch: Vec::new(),
        }
    }

    /// Build a shared auditor plus the handle the simulator should hold.
    /// `decisions` enables the policy-level checks (`Decision` events).
    pub fn shared(cfg: AuditorConfig, decisions: bool) -> (AuditHandle, Arc<Mutex<Auditor>>) {
        let auditor = Arc::new(Mutex::new(Auditor::new(cfg)));
        let sink: Arc<Mutex<dyn AuditSink>> = auditor.clone();
        (AuditHandle::from_shared(sink, decisions), auditor)
    }

    /// Snapshot the current findings.
    pub fn report(&self) -> AuditReport {
        AuditReport {
            events: self.events,
            stream_hash: self.hash.0,
            total_violations: self.total,
            violations: self.stored.clone(),
            counts: self.counts.clone(),
        }
    }

    fn absorb_scratch(&mut self) {
        for v in self.scratch.drain(..) {
            if self.cfg.panic_on_violation {
                panic!("audit violation: {v}");
            }
            match self.counts.iter_mut().find(|(k, _)| *k == v.kind) {
                Some((_, n)) => *n += 1,
                None => self.counts.push((v.kind, 1)),
            }
            if self.stored.len() < self.cfg.max_stored {
                self.stored.push(v);
            }
            self.total += 1;
        }
    }
}

impl AuditSink for Auditor {
    fn record(&mut self, ev: &AuditEvent) {
        fold_event(&mut self.hash, ev);
        self.events += 1;
        match ev {
            AuditEvent::DramConfig { channels, banks_per_channel, timing } => {
                self.oracle.on_config(*channels, *banks_per_channel, *timing);
            }
            AuditEvent::CtrlConfig { cores, policy, read_first, overhead, .. } => {
                self.policy.on_config(*cores, policy, *read_first, *overhead);
            }
            AuditEvent::PolicyParams { params } => self.policy.on_params(params),
            AuditEvent::ProfileUpdate { me } => self.policy.on_profile(me),
            AuditEvent::Submit { core, write, .. } => self.policy.on_submit(*core, *write),
            AuditEvent::Refresh { channel, at } => {
                self.oracle.on_refresh(*channel, *at, &mut self.scratch);
            }
            AuditEvent::Precharge { channel, bank, at } => {
                self.oracle.on_precharge(*channel, *bank, *at, &mut self.scratch);
            }
            AuditEvent::Decision { channel, at, draining, chosen, candidates, pending_reads } => {
                let facts = DecisionFacts {
                    channel: *channel,
                    at: *at,
                    draining: *draining,
                    chosen: *chosen,
                    candidates,
                    pending_reads,
                };
                self.policy.on_decision(&facts, &self.oracle, &mut self.scratch);
            }
            AuditEvent::Grant {
                id: _,
                core,
                channel,
                bank,
                row,
                write,
                requested_at,
                granted_at,
                keep_open,
                outcome,
                data_ready,
            } => {
                self.policy.on_grant(*core, *write);
                let facts = GrantFacts {
                    channel: *channel,
                    bank: *bank,
                    row: *row,
                    write: *write,
                    requested_at: *requested_at,
                    granted_at: *granted_at,
                    keep_open: *keep_open,
                    outcome: *outcome,
                    data_ready: *data_ready,
                };
                self.oracle.on_grant(&facts, &mut self.scratch);
            }
        }
        self.absorb_scratch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GrantOutcome, TimingParams};

    fn ddr2() -> TimingParams {
        TimingParams { t_rcd: 40, t_cl: 40, t_rp: 40, t_wr: 48, burst: 16, ..Default::default() }
    }

    fn legal_stream() -> Vec<AuditEvent> {
        vec![
            AuditEvent::DramConfig { channels: 1, banks_per_channel: 8, timing: ddr2() },
            AuditEvent::CtrlConfig {
                cores: 1,
                policy: "HF-RF",
                read_first: true,
                buffer_entries: 64,
                drain_start: 32,
                drain_stop: 16,
                overhead: 0,
            },
            AuditEvent::Submit { id: 0, core: 0, channel: 0, bank: 0, row: 5, write: false, at: 0 },
            AuditEvent::Decision {
                channel: 0,
                at: 0,
                draining: false,
                chosen: 0,
                candidates: vec![crate::event::CandidateInfo {
                    id: 0,
                    core: 0,
                    bank: 0,
                    row: 5,
                    write: false,
                    row_hit: false,
                    arrival: 0,
                }],
                pending_reads: vec![1],
            },
            AuditEvent::Grant {
                id: 0,
                core: 0,
                channel: 0,
                bank: 0,
                row: 5,
                write: false,
                requested_at: 0,
                granted_at: 0,
                keep_open: false,
                outcome: GrantOutcome::ClosedMiss,
                data_ready: 96,
            },
        ]
    }

    #[test]
    fn legal_stream_is_clean_and_hashes_deterministically() {
        let mut a = Auditor::new(AuditorConfig::default());
        let mut b = Auditor::new(AuditorConfig::default());
        for ev in legal_stream() {
            a.record(&ev);
            b.record(&ev);
        }
        let (ra, rb) = (a.report(), b.report());
        assert!(ra.is_clean(), "{}", ra.render());
        assert_eq!(ra.stream_hash, rb.stream_hash);
        assert_eq!(ra.events, 5);
    }

    #[test]
    fn mutated_stream_changes_hash_and_is_flagged() {
        let mut a = Auditor::new(AuditorConfig::default());
        let clean_hash = {
            let mut c = Auditor::new(AuditorConfig::default());
            for ev in legal_stream() {
                c.record(&ev);
            }
            c.report().stream_hash
        };
        let mut evs = legal_stream();
        if let AuditEvent::Grant { data_ready, .. } = &mut evs[4] {
            *data_ready = 80; // faster than tRCD + tCL allows
        }
        for ev in evs {
            a.record(&ev);
        }
        let r = a.report();
        assert_ne!(r.stream_hash, clean_hash);
        assert_eq!(r.total_violations, 1, "{}", r.render());
        assert_eq!(r.violations[0].kind, ViolationKind::DataTooEarly);
        assert!(r.render().contains("DataTooEarly"));
    }

    #[test]
    #[should_panic(expected = "audit violation")]
    fn panic_mode_trips_on_first_violation() {
        let cfg = AuditorConfig { panic_on_violation: true, ..Default::default() };
        let mut a = Auditor::new(cfg);
        let mut evs = legal_stream();
        if let AuditEvent::Grant { granted_at, requested_at, .. } = &mut evs[4] {
            *granted_at = 0;
            *requested_at = 5; // grant before request
        }
        for ev in evs {
            a.record(&ev);
        }
    }

    #[test]
    fn shared_handle_feeds_the_auditor() {
        let (handle, auditor) = Auditor::shared(AuditorConfig::default(), true);
        for ev in legal_stream() {
            handle.emit(|| ev.clone());
        }
        let r = auditor.lock().expect("auditor").report();
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.events, 5);
    }

    #[test]
    fn stored_violations_are_capped_but_counted() {
        let cfg = AuditorConfig { max_stored: 2, ..Default::default() };
        let mut a = Auditor::new(cfg);
        a.record(&AuditEvent::DramConfig { channels: 1, banks_per_channel: 1, timing: ddr2() });
        for i in 0..5u64 {
            // Five refreshes while refresh is disabled: five RefreshBad.
            a.record(&AuditEvent::Refresh { channel: 0, at: i });
        }
        let r = a.report();
        assert_eq!(r.total_violations, 5);
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.counts, vec![(ViolationKind::RefreshBad, 5)]);
        assert!(r.render().contains("3 more not stored"));
    }
}
