//! The audit event stream: what the instrumented simulator reports.
//!
//! Events are plain data — the auditor re-derives all legality from them
//! and deliberately shares no state-machine code with `melreq-dram` or
//! `melreq-memctrl`. The instrumentation contract is:
//!
//! * `DramConfig` is emitted once, at attach time; `CtrlConfig` is
//!   emitted at attach time and again whenever the controller swaps its
//!   scheduling policy mid-run (warmup sharing) — a repeat `CtrlConfig`
//!   re-arms the policy-invariant model without resetting the device
//!   replicas or the request history;
//! * `ProfileUpdate` is emitted when the priority tables are
//!   (re)programmed, carrying the exact ME vector handed to the policy;
//! * `Submit` is emitted for every request entering the shared buffer;
//! * `Refresh` events are emitted *before* any grant that follows the
//!   refresh boundary on that channel;
//! * `Decision` is emitted for every scheduling choice, *before* the
//!   matching `Grant`, and lists the complete candidate set the
//!   controller considered.

use melreq_stats::types::Cycle;
use std::sync::{Arc, Mutex};

/// DRAM timing parameters as the instrumented device reports them, in
/// CPU cycles. Zero disables an optional constraint, mirroring
/// `melreq_dram::DramTiming`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingParams {
    /// ACT → READ/WRITE (row-to-column) delay.
    pub t_rcd: Cycle,
    /// CAS latency.
    pub t_cl: Cycle,
    /// Precharge time.
    pub t_rp: Cycle,
    /// Write recovery before precharge.
    pub t_wr: Cycle,
    /// Data-bus occupancy of one burst.
    pub burst: Cycle,
    /// Refresh interval (0 = refresh disabled).
    pub t_refi: Cycle,
    /// Refresh cycle time.
    pub t_rfc: Cycle,
    /// Minimum ACT-to-ACT spacing per channel (0 = unconstrained).
    pub t_rrd: Cycle,
    /// Four-activate window (0 = unconstrained).
    pub t_faw: Cycle,
}

/// How the granting side claims the row buffer was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantOutcome {
    /// Addressed row already open.
    Hit,
    /// Bank closed: ACT then column access.
    ClosedMiss,
    /// Another row open: PRE, ACT, column access.
    Conflict,
}

/// One request the controller offered to the scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateInfo {
    /// Request id (monotone in arrival order).
    pub id: u64,
    /// Originating core.
    pub core: u16,
    /// Target bank on the decision's channel.
    pub bank: usize,
    /// Target row.
    pub row: u64,
    /// Write-back (true) or demand read (false).
    pub write: bool,
    /// The controller's claim that this request hits an open row.
    pub row_hit: bool,
    /// Cycle the request entered the shared buffer.
    pub arrival: Cycle,
}

/// One event of the instrumented simulator's audit stream.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditEvent {
    /// DRAM device shape and timing (once, at attach).
    DramConfig {
        /// Logical channel count.
        channels: usize,
        /// Banks per channel.
        banks_per_channel: usize,
        /// Timing parameters in CPU cycles.
        timing: TimingParams,
    },
    /// Controller configuration (at attach, and again on every mid-run
    /// policy swap).
    CtrlConfig {
        /// Core count.
        cores: usize,
        /// Active policy's display name.
        policy: &'static str,
        /// Whether reads bypass writes.
        read_first: bool,
        /// Shared buffer entries.
        buffer_entries: usize,
        /// Pending-write count that starts draining.
        drain_start: usize,
        /// Pending-write count that stops draining.
        drain_stop: usize,
        /// Fixed pipeline overhead before a request is schedulable.
        overhead: Cycle,
    },
    /// The active policy's tunable parameters (emitted right after
    /// `CtrlConfig`, and only for parameterized policies — the paper's
    /// schemes carry no parameters, so their streams are unchanged).
    PolicyParams {
        /// `(key, value)` pairs in the policy's declared order.
        params: Vec<(&'static str, u64)>,
    },
    /// The priority tables were programmed with this ME vector.
    ProfileUpdate {
        /// Per-core memory-efficiency values.
        me: Vec<f64>,
    },
    /// A request entered the shared buffer.
    Submit {
        /// Request id.
        id: u64,
        /// Originating core.
        core: u16,
        /// Decoded channel.
        channel: usize,
        /// Decoded bank.
        bank: usize,
        /// Decoded row.
        row: u64,
        /// Write-back (true) or read (false).
        write: bool,
        /// Submission cycle.
        at: Cycle,
    },
    /// An all-bank refresh started on `channel` at `at`.
    Refresh {
        /// Channel refreshed.
        channel: usize,
        /// Cycle the refresh started.
        at: Cycle,
    },
    /// The controller explicitly precharged a bank.
    Precharge {
        /// Channel.
        channel: usize,
        /// Bank.
        bank: usize,
        /// Cycle of the precharge command.
        at: Cycle,
    },
    /// One scheduling decision (emitted before its `Grant`).
    Decision {
        /// Channel the decision is for.
        channel: usize,
        /// Scheduling cycle.
        at: Cycle,
        /// Whether the controller is in write-drain mode.
        draining: bool,
        /// Chosen request id.
        chosen: u64,
        /// The full candidate set the controller considered.
        candidates: Vec<CandidateInfo>,
        /// Per-core pending read counts the policy saw.
        pending_reads: Vec<u32>,
    },
    /// A transaction was granted to the DRAM device.
    Grant {
        /// Request id.
        id: u64,
        /// Originating core.
        core: u16,
        /// Channel.
        channel: usize,
        /// Bank.
        bank: usize,
        /// Row.
        row: u64,
        /// Write-back (true) or read (false).
        write: bool,
        /// Cycle the controller asked for the grant.
        requested_at: Cycle,
        /// Effective grant cycle after activate-window spacing.
        granted_at: Cycle,
        /// Close-page decision: row stays latched after the access.
        keep_open: bool,
        /// Claimed row-buffer outcome.
        outcome: GrantOutcome,
        /// Claimed cycle of the last data beat.
        data_ready: Cycle,
    },
}

/// Receives audit events from the instrumented simulator.
pub trait AuditSink: Send + std::fmt::Debug {
    /// Observe one event.
    fn record(&mut self, ev: &AuditEvent);
}

/// A sink that stores the raw stream (for tests and offline replay).
///
/// By default the stream grows without bound; [`Recorder::bounded`]
/// caps it, dropping the oldest events once full so long runs keep the
/// most recent window and a count of what fell off the front.
#[derive(Debug, Default)]
pub struct Recorder {
    /// The recorded stream, in emission order.
    pub events: Vec<AuditEvent>,
    /// `Some(cap)` keeps at most `cap` events (oldest dropped first).
    capacity: Option<usize>,
    dropped: u64,
}

impl Recorder {
    /// A recorder that keeps at most `capacity` events, evicting the
    /// oldest first. A capacity of 0 is clamped to 1.
    pub fn bounded(capacity: usize) -> Self {
        Recorder { events: Vec::new(), capacity: Some(capacity.max(1)), dropped: 0 }
    }

    /// Events evicted so far because the recorder was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl AuditSink for Recorder {
    fn record(&mut self, ev: &AuditEvent) {
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                // Shifting a Vec is O(n), but bounded recorders are a
                // test/replay aid, not a hot path; the ring buffer for
                // hot-path capture lives in melreq-obs.
                self.events.remove(0);
                self.dropped += 1;
            }
        }
        self.events.push(ev.clone());
    }
}

/// A cheap, cloneable handle the instrumented crates hold. Disabled
/// handles reduce every emission to one `Option` check; enabled handles
/// forward to a shared [`AuditSink`].
#[derive(Debug, Clone, Default)]
pub struct AuditHandle {
    inner: Option<Arc<Mutex<dyn AuditSink>>>,
    decisions: bool,
}

impl AuditHandle {
    /// A handle that drops every event (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Wrap a sink. `decisions` controls whether the (comparatively
    /// expensive) `Decision` events should be emitted; timing-only
    /// auditing can leave it off.
    pub fn new<S: AuditSink + 'static>(sink: S, decisions: bool) -> Self {
        AuditHandle { inner: Some(Arc::new(Mutex::new(sink))), decisions }
    }

    /// Share an existing sink (the caller keeps the other `Arc` to read
    /// results back after the run).
    pub fn from_shared(sink: Arc<Mutex<dyn AuditSink>>, decisions: bool) -> Self {
        AuditHandle { inner: Some(sink), decisions }
    }

    /// Whether any sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `Decision` events should be built and emitted.
    pub fn wants_decisions(&self) -> bool {
        self.inner.is_some() && self.decisions
    }

    /// Emit one event; `make` runs only when a sink is attached.
    pub fn emit(&self, make: impl FnOnce() -> AuditEvent) {
        if let Some(sink) = &self.inner {
            let ev = make();
            sink.lock().expect("audit sink poisoned").record(&ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_builds_events() {
        let h = AuditHandle::disabled();
        assert!(!h.is_enabled());
        assert!(!h.wants_decisions());
        h.emit(|| unreachable!("disabled handle must not build events"));
    }

    #[test]
    fn recorder_captures_in_order() {
        let h = AuditHandle::new(Recorder::default(), true);
        h.emit(|| AuditEvent::Refresh { channel: 0, at: 10 });
        h.emit(|| AuditEvent::Refresh { channel: 1, at: 20 });
        assert!(h.is_enabled() && h.wants_decisions());
    }

    #[test]
    fn bounded_recorder_drops_oldest_and_counts() {
        let mut r = Recorder::bounded(2);
        for at in 0..5u64 {
            r.record(&AuditEvent::Refresh { channel: 0, at });
        }
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.dropped(), 3);
        assert!(matches!(r.events[0], AuditEvent::Refresh { at: 3, .. }));
        assert!(matches!(r.events[1], AuditEvent::Refresh { at: 4, .. }));
        let unbounded = Recorder::default();
        assert_eq!(unbounded.dropped(), 0);
    }

    #[test]
    fn shared_sink_is_readable_after_emission() {
        let shared: Arc<Mutex<dyn AuditSink>> = Arc::new(Mutex::new(Recorder::default()));
        let h = AuditHandle::from_shared(shared.clone(), false);
        h.emit(|| AuditEvent::Precharge { channel: 0, bank: 3, at: 99 });
        let guard = shared.lock().expect("sink");
        let dbg = format!("{guard:?}");
        assert!(dbg.contains("Precharge"), "{dbg}");
    }
}
