//! The timing oracle: an independent DDR2 legality checker.
//!
//! The oracle replays the audit event stream through its own per-bank
//! state machines — written against the DDR2 command-timing rules the
//! simulator claims to honour (Zheng et al., ICPP 2008, Section 2;
//! JEDEC DDR2 tRCD/tCL/tRP/tWR/tRRD/tFAW/tREFI/tRFC) — and flags every
//! grant whose claimed timing it cannot legally re-derive. It shares no
//! code with `melreq-dram`: everything is recomputed from the
//! [`TimingParams`](crate::event::TimingParams) carried in the stream.

use crate::event::{GrantOutcome, TimingParams};
use melreq_stats::types::Cycle;

/// What rule a stream event broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Grant before the bank finished its previous command sequence.
    BankBusy,
    /// Claimed data completes before the bank latency allows (tRCD /
    /// tCL / tRP path for the claimed outcome).
    DataTooEarly,
    /// Claimed burst overlaps the previous burst on the channel's bus.
    BusOverlap,
    /// Claimed data-ready differs from the derived cycle (late is also
    /// an error: the model is deterministic, not merely lower-bounded).
    DataMismatch,
    /// Claimed row-buffer outcome disagrees with the replayed state.
    OutcomeMismatch,
    /// ACT issued closer than tRRD to the previous ACT.
    ActTooSoon,
    /// Fifth ACT inside a tFAW window.
    FawExceeded,
    /// A grant was requested past a refresh boundary that was never
    /// performed.
    RefreshMissed,
    /// Refresh at the wrong cycle, out of order, or while disabled.
    RefreshBad,
    /// Grant effective before it was requested, or a grant/decision
    /// arrived before the stream's `DramConfig`.
    StreamInvalid,
    /// The granted request was not in the decision's candidate set.
    ChosenNotCandidate,
    /// A listed candidate was not actually issuable (bank busy or the
    /// controller pipeline overhead had not elapsed).
    NotIssuable,
    /// A candidate's claimed row-hit flag disagrees with the replayed
    /// row latch.
    RowHitMismatch,
    /// The grant's class (read/write) contradicts the read-first /
    /// write-drain discipline.
    ClassViolated,
    /// Within the selected class/core the grant was not
    /// hit-first-then-oldest.
    HitFirstViolated,
    /// Plain FCFS granted out of arrival order.
    FcfsOrderViolated,
    /// The core-aware policy (RR/LREQ/ME/FIX/ME-LREQ) selected a core
    /// its ranking rule does not permit.
    CoreChoiceViolated,
    /// ME-LREQ's choice is inconsistent with the priority table implied
    /// by the last profile update.
    TableInconsistent,
    /// The pending-read counts the policy saw disagree with the counts
    /// implied by the submit/grant history.
    PendingMismatch,
    /// A request exceeded the configured starvation age cap.
    Starvation,
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Rule broken.
    pub kind: ViolationKind,
    /// Cycle of the offending event.
    pub at: Cycle,
    /// Channel involved (when applicable).
    pub channel: usize,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:?}] ch{} @{}: {}", self.kind, self.channel, self.at, self.detail)
    }
}

/// Replayed state of one bank.
#[derive(Debug, Clone, Copy)]
struct BankReplica {
    open_row: Option<u64>,
    ready_at: Cycle,
}

/// Replayed state of one channel.
#[derive(Debug, Clone)]
struct ChannelReplica {
    banks: Vec<BankReplica>,
    bus_free: Cycle,
    recent_acts: [Cycle; 4],
    act_head: usize,
    acts_seen: u64,
    refreshes: u64,
}

impl ChannelReplica {
    fn new(banks: usize) -> Self {
        ChannelReplica {
            banks: vec![BankReplica { open_row: None, ready_at: 0 }; banks],
            bus_free: 0,
            recent_acts: [0; 4],
            act_head: 0,
            acts_seen: 0,
            refreshes: 0,
        }
    }

    fn note_act(&mut self, at: Cycle) {
        self.recent_acts[self.act_head] = at;
        self.act_head = (self.act_head + 1) % 4;
        self.acts_seen += 1;
    }
}

/// The timing oracle. Feed it the stream via the `on_*` methods (the
/// [`Auditor`](crate::Auditor) does this) and collect violations.
#[derive(Debug, Clone, Default)]
pub struct TimingOracle {
    timing: TimingParams,
    channels: Vec<ChannelReplica>,
    configured: bool,
}

/// Per-grant facts the oracle needs from a `Grant` event.
#[derive(Debug, Clone, Copy)]
pub struct GrantFacts {
    /// Channel granted on.
    pub channel: usize,
    /// Bank granted on.
    pub bank: usize,
    /// Row addressed.
    pub row: u64,
    /// Write access (extends auto-precharge by tWR).
    pub write: bool,
    /// Controller's scheduling cycle.
    pub requested_at: Cycle,
    /// Effective grant cycle after activate-window spacing.
    pub granted_at: Cycle,
    /// Close-page decision.
    pub keep_open: bool,
    /// Claimed row-buffer outcome.
    pub outcome: GrantOutcome,
    /// Claimed cycle of the last data beat.
    pub data_ready: Cycle,
}

impl TimingOracle {
    /// An unconfigured oracle (configure via [`TimingOracle::on_config`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `on_config` has been seen.
    pub fn is_configured(&self) -> bool {
        self.configured
    }

    /// The timing parameters the stream declared.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Apply the stream's `DramConfig`.
    pub fn on_config(&mut self, channels: usize, banks_per_channel: usize, timing: TimingParams) {
        self.timing = timing;
        self.channels = (0..channels).map(|_| ChannelReplica::new(banks_per_channel)).collect();
        self.configured = true;
    }

    /// Whether `bank` on `channel` could legally accept a new command
    /// sequence at `now` (used by the policy auditor for candidate
    /// issuability checks).
    pub fn can_issue(&self, channel: usize, bank: usize, now: Cycle) -> bool {
        self.channels
            .get(channel)
            .and_then(|c| c.banks.get(bank))
            .is_some_and(|b| b.ready_at <= now)
    }

    /// The row the replayed state holds open in `bank` (if any).
    pub fn open_row(&self, channel: usize, bank: usize) -> Option<u64> {
        self.channels.get(channel)?.banks.get(bank)?.open_row
    }

    /// Replay an all-bank refresh on `channel` claimed to start at `at`.
    pub fn on_refresh(&mut self, channel: usize, at: Cycle, out: &mut Vec<Violation>) {
        if !self.configured || channel >= self.channels.len() {
            out.push(Violation {
                kind: ViolationKind::StreamInvalid,
                at,
                channel,
                detail: "refresh before DramConfig or on unknown channel".into(),
            });
            return;
        }
        let t = self.timing;
        let ch = &mut self.channels[channel];
        if t.t_refi == 0 {
            out.push(Violation {
                kind: ViolationKind::RefreshBad,
                at,
                channel,
                detail: "refresh performed with refresh disabled (tREFI = 0)".into(),
            });
        } else {
            let expected = (ch.refreshes + 1) * t.t_refi;
            if at != expected {
                out.push(Violation {
                    kind: ViolationKind::RefreshBad,
                    at,
                    channel,
                    detail: format!("refresh #{} at {at}, expected {expected}", ch.refreshes + 1),
                });
            }
        }
        for b in &mut ch.banks {
            b.open_row = None;
            b.ready_at = b.ready_at.max(at) + t.t_rfc;
        }
        ch.refreshes += 1;
    }

    /// Replay an explicit precharge command.
    pub fn on_precharge(
        &mut self,
        channel: usize,
        bank: usize,
        at: Cycle,
        out: &mut Vec<Violation>,
    ) {
        let Some(b) = self.channels.get_mut(channel).and_then(|c| c.banks.get_mut(bank)) else {
            out.push(Violation {
                kind: ViolationKind::StreamInvalid,
                at,
                channel,
                detail: format!("precharge on unknown bank {bank}"),
            });
            return;
        };
        if b.open_row.is_some() {
            b.open_row = None;
            b.ready_at = b.ready_at.max(at) + self.timing.t_rp;
        }
    }

    /// Replay one grant, checking every timing rule, then advance the
    /// replica to the state a legal device would be in.
    pub fn on_grant(&mut self, g: &GrantFacts, out: &mut Vec<Violation>) {
        let t = self.timing;
        if !self.configured || self.channels.get(g.channel).is_none_or(|c| g.bank >= c.banks.len())
        {
            out.push(Violation {
                kind: ViolationKind::StreamInvalid,
                at: g.requested_at,
                channel: g.channel,
                detail: format!("grant before DramConfig or on unknown bank {}", g.bank),
            });
            return;
        }
        if g.granted_at < g.requested_at {
            out.push(Violation {
                kind: ViolationKind::StreamInvalid,
                at: g.requested_at,
                channel: g.channel,
                detail: format!(
                    "granted_at {} precedes requested_at {}",
                    g.granted_at, g.requested_at
                ),
            });
        }

        // Refresh discipline: the device must have caught up all refresh
        // boundaries before servicing a request at `requested_at`.
        if t.t_refi > 0 {
            let due = (self.channels[g.channel].refreshes + 1) * t.t_refi;
            if due <= g.requested_at {
                out.push(Violation {
                    kind: ViolationKind::RefreshMissed,
                    at: g.requested_at,
                    channel: g.channel,
                    detail: format!("refresh due at {due} not performed before grant"),
                });
            }
        }

        let bank = self.channels[g.channel].banks[g.bank];

        // Bank availability: the previous command sequence must be done.
        if bank.ready_at > g.granted_at {
            out.push(Violation {
                kind: ViolationKind::BankBusy,
                at: g.granted_at,
                channel: g.channel,
                detail: format!(
                    "bank {} busy until {} but granted at {}",
                    g.bank, bank.ready_at, g.granted_at
                ),
            });
        }

        // Row-buffer outcome: re-derive from the replayed row latch.
        let expected_outcome = match bank.open_row {
            Some(r) if r == g.row => GrantOutcome::Hit,
            Some(_) => GrantOutcome::Conflict,
            None => GrantOutcome::ClosedMiss,
        };
        if expected_outcome != g.outcome {
            out.push(Violation {
                kind: ViolationKind::OutcomeMismatch,
                at: g.granted_at,
                channel: g.channel,
                detail: format!(
                    "bank {} row {}: claimed {:?}, replay says {:?}",
                    g.bank, g.row, g.outcome, expected_outcome
                ),
            });
        }

        // Activate-window discipline for transactions that need an ACT.
        // We check against the replica's own derived outcome so a lying
        // `outcome` field cannot also corrupt the window check.
        let needs_act = !matches!(expected_outcome, GrantOutcome::Hit);
        let act_at = if matches!(expected_outcome, GrantOutcome::Conflict) {
            g.granted_at + t.t_rp
        } else {
            g.granted_at
        };
        if needs_act {
            let ch = &self.channels[g.channel];
            if t.t_rrd > 0 && ch.acts_seen >= 1 {
                let last = ch.recent_acts[(ch.act_head + 3) % 4];
                if act_at < last + t.t_rrd {
                    out.push(Violation {
                        kind: ViolationKind::ActTooSoon,
                        at: g.granted_at,
                        channel: g.channel,
                        detail: format!(
                            "ACT at {act_at} but previous ACT at {last} needs tRRD {}",
                            t.t_rrd
                        ),
                    });
                }
            }
            if t.t_faw > 0 && ch.acts_seen >= 4 {
                let oldest = ch.recent_acts[ch.act_head];
                if act_at < oldest + t.t_faw {
                    out.push(Violation {
                        kind: ViolationKind::FawExceeded,
                        at: g.granted_at,
                        channel: g.channel,
                        detail: format!(
                            "5th ACT at {act_at} inside tFAW window from {oldest} (tFAW {})",
                            t.t_faw
                        ),
                    });
                }
            }
        }

        // Data timing: derive when a legal device would finish the burst
        // for the *replayed* outcome and compare against the claim.
        let bank_latency = match expected_outcome {
            GrantOutcome::Hit => t.t_cl,
            GrantOutcome::ClosedMiss => t.t_rcd + t.t_cl,
            GrantOutcome::Conflict => t.t_rp + t.t_rcd + t.t_cl,
        };
        let bank_data_start = g.granted_at + bank_latency;
        let bus_free = self.channels[g.channel].bus_free;
        let bus_start = bank_data_start.max(bus_free);
        let expected_ready = bus_start + t.burst;
        if g.data_ready != expected_ready {
            let claimed_start = g.data_ready.saturating_sub(t.burst);
            let (kind, what) = if claimed_start < bank_data_start {
                (ViolationKind::DataTooEarly, "before the bank's CAS latency allows")
            } else if claimed_start < bus_free {
                (ViolationKind::BusOverlap, "overlapping the previous burst on the bus")
            } else {
                (ViolationKind::DataMismatch, "diverging from the derived schedule")
            };
            out.push(Violation {
                kind,
                at: g.granted_at,
                channel: g.channel,
                detail: format!(
                    "bank {}: claimed data ready {} {what}; derived {expected_ready}",
                    g.bank, g.data_ready
                ),
            });
        }

        // Advance the replica along the legal schedule (the derived one,
        // so one bad claim yields one violation, not an avalanche).
        let ch = &mut self.channels[g.channel];
        if needs_act {
            ch.note_act(act_at);
        }
        ch.bus_free = expected_ready;
        let b = &mut ch.banks[g.bank];
        if g.keep_open {
            b.open_row = Some(g.row);
            b.ready_at = bank_data_start;
        } else {
            b.open_row = None;
            let recovery = if g.write { t.t_wr } else { 0 };
            b.ready_at = bank_data_start + t.burst + recovery + t.t_rp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ddr2() -> TimingParams {
        TimingParams {
            t_rcd: 40,
            t_cl: 40,
            t_rp: 40,
            t_wr: 48,
            burst: 16,
            t_refi: 0,
            t_rfc: 0,
            t_rrd: 0,
            t_faw: 0,
        }
    }

    fn grant(bank: usize, row: u64, at: Cycle, outcome: GrantOutcome, ready: Cycle) -> GrantFacts {
        GrantFacts {
            channel: 0,
            bank,
            row,
            write: false,
            requested_at: at,
            granted_at: at,
            keep_open: false,
            outcome,
            data_ready: ready,
        }
    }

    #[test]
    fn legal_closed_miss_passes() {
        let mut o = TimingOracle::new();
        o.on_config(1, 8, ddr2());
        let mut v = Vec::new();
        o.on_grant(&grant(0, 5, 0, GrantOutcome::ClosedMiss, 96), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn data_too_early_detected() {
        let mut o = TimingOracle::new();
        o.on_config(1, 8, ddr2());
        let mut v = Vec::new();
        o.on_grant(&grant(0, 5, 0, GrantOutcome::ClosedMiss, 95), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::DataTooEarly);
    }

    #[test]
    fn bus_overlap_detected() {
        let mut o = TimingOracle::new();
        o.on_config(1, 8, ddr2());
        let mut v = Vec::new();
        o.on_grant(&grant(0, 5, 0, GrantOutcome::ClosedMiss, 96), &mut v);
        // Bank 1's data could start at 81 but the bus is busy until 96;
        // claiming 81+16 = 97..112 region start (ready 100) overlaps.
        o.on_grant(&grant(1, 5, 1, GrantOutcome::ClosedMiss, 100), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::BusOverlap);
    }

    #[test]
    fn bank_busy_detected() {
        let mut o = TimingOracle::new();
        o.on_config(1, 8, ddr2());
        let mut v = Vec::new();
        o.on_grant(&grant(0, 5, 0, GrantOutcome::ClosedMiss, 96), &mut v);
        // Auto-precharge holds the bank until 96 + 40 = 136.
        o.on_grant(&grant(0, 6, 100, GrantOutcome::ClosedMiss, 196), &mut v);
        assert!(v.iter().any(|x| x.kind == ViolationKind::BankBusy), "{v:?}");
    }

    #[test]
    fn outcome_mismatch_detected() {
        let mut o = TimingOracle::new();
        o.on_config(1, 8, ddr2());
        let mut v = Vec::new();
        // Claim a Hit on a closed bank; data timing checked against the
        // replayed ClosedMiss, so give the legal miss timing to isolate
        // the outcome check.
        o.on_grant(&grant(0, 5, 0, GrantOutcome::Hit, 96), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::OutcomeMismatch);
    }

    #[test]
    fn keep_open_then_hit_passes() {
        let mut o = TimingOracle::new();
        o.on_config(1, 8, ddr2());
        let mut v = Vec::new();
        let mut g0 = grant(0, 1, 0, GrantOutcome::ClosedMiss, 96);
        g0.keep_open = true;
        o.on_grant(&g0, &mut v);
        assert_eq!(o.open_row(0, 0), Some(1));
        // Bank ready again at data_start = 80; a hit at 80 finishes at
        // 80 + tCL = 120, bus free since 96, burst ends 136.
        o.on_grant(&grant(0, 1, 80, GrantOutcome::Hit, 136), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn refresh_discipline() {
        let mut t = ddr2();
        t.t_refi = 1000;
        t.t_rfc = 300;
        let mut o = TimingOracle::new();
        o.on_config(1, 8, t);
        let mut v = Vec::new();
        // Grant past the first boundary without a refresh.
        o.on_grant(&grant(0, 5, 1500, GrantOutcome::ClosedMiss, 1596), &mut v);
        assert!(v.iter().any(|x| x.kind == ViolationKind::RefreshMissed), "{v:?}");
        v.clear();
        // Correct refresh then grant is clean (bank blocked until 1000 +
        // 300 = 1300 < 1500... but replica already advanced; rebuild).
        let mut o = TimingOracle::new();
        o.on_config(1, 8, t);
        o.on_refresh(0, 1000, &mut v);
        o.on_grant(&grant(0, 5, 1300, GrantOutcome::ClosedMiss, 1396), &mut v);
        assert!(v.is_empty(), "{v:?}");
        // Wrong-cycle refresh flagged.
        o.on_refresh(0, 2100, &mut v);
        assert!(v.iter().any(|x| x.kind == ViolationKind::RefreshBad), "{v:?}");
    }

    #[test]
    fn trrd_and_tfaw_detected() {
        let mut t = ddr2();
        t.t_rrd = 24;
        t.t_faw = 120;
        let mut o = TimingOracle::new();
        o.on_config(1, 8, t);
        let mut v = Vec::new();
        // Legal spacing mirrors the channel model: second ACT shifted to
        // 24, data at 24 + 80 = 104 (> bus_free 96), ready 120.
        let mut g = grant(0, 0, 0, GrantOutcome::ClosedMiss, 96);
        o.on_grant(&g, &mut v);
        g = grant(1, 0, 0, GrantOutcome::ClosedMiss, 120);
        g.granted_at = 24;
        o.on_grant(&g, &mut v);
        assert!(v.is_empty(), "{v:?}");
        // A third ACT ignoring tRRD (granted at 25, last ACT at 24).
        g = grant(2, 0, 25, GrantOutcome::ClosedMiss, 136);
        o.on_grant(&g, &mut v);
        assert!(v.iter().any(|x| x.kind == ViolationKind::ActTooSoon), "{v:?}");
        v.clear();
        // Fill the four-ACT window legally, then jam a fifth inside it.
        let mut o = TimingOracle::new();
        o.on_config(1, 8, t);
        for (i, at) in [0u64, 24, 48, 72].iter().enumerate() {
            // legal_ready derives the bus-serialized completion so this
            // fill violates no data rule — only the 5th ACT below does.
            let mut g = grant(i, 0, *at, GrantOutcome::ClosedMiss, 0);
            g.data_ready = legal_ready(&o, &g);
            o.on_grant(&g, &mut v);
        }
        assert!(v.is_empty(), "window fill should be legal: {v:?}");
        let mut g = grant(4, 0, 96, GrantOutcome::ClosedMiss, 0);
        g.data_ready = legal_ready(&o, &g);
        o.on_grant(&g, &mut v);
        assert!(v.iter().any(|x| x.kind == ViolationKind::FawExceeded), "{v:?}");
    }

    /// Derive the data-ready cycle the oracle itself would compute, so a
    /// test can violate exactly one rule at a time.
    fn legal_ready(o: &TimingOracle, g: &GrantFacts) -> Cycle {
        let t = *o.timing();
        let bank_latency = match g.outcome {
            GrantOutcome::Hit => t.t_cl,
            GrantOutcome::ClosedMiss => t.t_rcd + t.t_cl,
            GrantOutcome::Conflict => t.t_rp + t.t_rcd + t.t_cl,
        };
        let start = g.granted_at + bank_latency;
        start.max(o.channels[g.channel].bus_free) + t.burst
    }
}
