//! Core structural parameters (Table 1).

use melreq_stats::types::Cycle;

/// Sizing of one out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Fetch/dispatch/issue/commit width.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Issue-queue entries (dispatched but not yet issued).
    pub iq: usize,
    /// Load-queue entries.
    pub lq: usize,
    /// Store-queue entries.
    pub sq: usize,
    /// Integer ALUs.
    pub int_alu: usize,
    /// Integer multipliers.
    pub int_mult: usize,
    /// FP ALUs.
    pub fp_alu: usize,
    /// FP multipliers.
    pub fp_mult: usize,
    /// Front-end refill penalty after a mispredicted branch resolves
    /// (16-stage pipeline's fetch-to-issue depth).
    pub redirect_penalty: Cycle,
}

impl CoreConfig {
    /// The paper's core (Table 1).
    pub fn paper() -> Self {
        CoreConfig {
            width: 4,
            rob: 196,
            iq: 64,
            lq: 32,
            sq: 32,
            int_alu: 4,
            int_mult: 2,
            fp_alu: 2,
            fp_mult: 1,
            redirect_penalty: 11,
        }
    }

    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.width >= 1, "width must be positive");
        assert!(self.rob >= self.width, "ROB smaller than pipeline width");
        assert!(self.iq >= 1 && self.lq >= 1 && self.sq >= 1, "queues must be non-empty");
        assert!(self.int_alu >= 1, "need at least one integer ALU (address generation uses it)");
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_1() {
        let c = CoreConfig::paper();
        assert_eq!(c.width, 4);
        assert_eq!(c.rob, 196);
        assert_eq!(c.iq, 64);
        assert_eq!((c.lq, c.sq), (32, 32));
        assert_eq!((c.int_alu, c.int_mult, c.fp_alu, c.fp_mult), (4, 2, 2, 1));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "ROB smaller")]
    fn rejects_tiny_rob() {
        let mut c = CoreConfig::paper();
        c.rob = 2;
        c.validate();
    }
}
