//! The core ↔ memory-hierarchy interface.

use melreq_stats::types::{Addr, CoreId, Cycle};

/// Handle the core attaches to an outstanding access so it can resume the
/// right consumer when the hierarchy completes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreToken {
    /// A data load; the payload is the micro-op's sequence number.
    Load(u64),
    /// An instruction-fetch line fill.
    Fetch,
}

/// Outcome of starting an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemResponse {
    /// The access hits in the first-level cache; data is ready at the
    /// given cycle.
    HitAt(Cycle),
    /// The access missed and is in flight; the hierarchy will call
    /// [`crate::Core::finish`] with the token when data returns.
    Pending,
    /// No resources (MSHR full, queue full): retry next cycle.
    Blocked,
}

/// What the core needs from the memory system. Implemented in
/// `melreq-core` by the two-level cache hierarchy + memory controller.
pub trait CoreMemory {
    /// Start a data load.
    fn load(&mut self, core: CoreId, token: CoreToken, addr: Addr, now: Cycle) -> MemResponse;

    /// Start an instruction-line fetch.
    fn ifetch(&mut self, core: CoreId, token: CoreToken, addr: Addr, now: Cycle) -> MemResponse;

    /// Retire a store into the hierarchy (write-allocate, buffered).
    /// Returns `false` when the hierarchy cannot accept it this cycle.
    fn store(&mut self, core: CoreId, addr: Addr, now: Cycle) -> bool;
}

/// A trivially-hitting memory for unit tests and IPC upper-bound studies:
/// every access hits with a fixed latency.
#[derive(Debug, Clone)]
pub struct PerfectMemory {
    /// Load-to-use latency applied to every access.
    pub latency: Cycle,
}

impl CoreMemory for PerfectMemory {
    fn load(&mut self, _core: CoreId, _token: CoreToken, _addr: Addr, now: Cycle) -> MemResponse {
        MemResponse::HitAt(now + self.latency)
    }

    fn ifetch(&mut self, _core: CoreId, _token: CoreToken, _addr: Addr, now: Cycle) -> MemResponse {
        MemResponse::HitAt(now + 1)
    }

    fn store(&mut self, _core: CoreId, _addr: Addr, _now: Cycle) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_memory_always_hits() {
        let mut m = PerfectMemory { latency: 3 };
        assert_eq!(m.load(CoreId(0), CoreToken::Load(0), 0x40, 10), MemResponse::HitAt(13));
        assert_eq!(m.ifetch(CoreId(0), CoreToken::Fetch, 0x80, 10), MemResponse::HitAt(11));
        assert!(m.store(CoreId(0), 0x100, 10));
    }
}
