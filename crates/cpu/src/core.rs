//! The out-of-order core pipeline model.

use crate::config::CoreConfig;
use crate::port::{CoreMemory, CoreToken, MemResponse};
use melreq_stats::types::{line_addr, Addr, CoreId, Cycle};
use melreq_stats::Counter;
use melreq_trace::{InstrStream, MicroOp, OpKind};
use std::collections::VecDeque;

/// Execution state of one in-flight micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpState {
    /// Dispatched; waiting for operands / issue resources (occupies IQ).
    Waiting,
    /// Executing; result available at `done_at`.
    Executing { done_at: Cycle },
    /// Load outstanding in the memory hierarchy.
    WaitingMem,
    /// Completed at `at`.
    Done { at: Cycle },
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    kind: OpKind,
    /// Producer's sequence number, if register-dependent.
    dep_seq: Option<u64>,
    state: OpState,
    seq: u64,
}

/// Per-core execution statistics.
#[derive(Debug, Default, Clone)]
pub struct CoreStats {
    /// Committed micro-ops.
    pub committed: Counter,
    /// Core cycles simulated.
    pub cycles: Counter,
    /// Loads issued to the data cache.
    pub loads: Counter,
    /// Stores retired into the hierarchy.
    pub stores: Counter,
    /// Mispredicted branches dispatched.
    pub mispredicts: Counter,
    /// Cycles the commit stage retired nothing.
    pub commit_stall_cycles: Counter,
}

impl CoreStats {
    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        if self.cycles.get() == 0 {
            0.0
        } else {
            self.committed.get() as f64 / self.cycles.get() as f64
        }
    }
}

/// One out-of-order core executing a synthetic instruction stream.
pub struct Core {
    id: CoreId, // melreq-allow(S01): construction-time identity, identical across snapshot peers
    cfg: CoreConfig, // melreq-allow(S01): construction-time config, identical across snapshot peers
    stream: Box<dyn InstrStream + Send>,
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    next_seq: u64,
    // Fetch state.
    fetch_line: Option<Addr>,
    fetch_pending: bool,
    staged: Option<MicroOp>,
    fetch_stall_until: Cycle,
    halted_by_branch: Option<u64>,
    // Occupancy counters.
    loads_in_rob: usize,
    stores_in_rob: usize,
    /// Sequence numbers of `OpState::Waiting` ops, in program order — the
    /// issue stage's worklist. Kept exactly in sync with the ROB states so
    /// issue and the fast-forward bound never scan the full ROB: an op is
    /// appended at dispatch and compacted out when it leaves `Waiting`.
    /// Bounded by the IQ size (dispatch stops at `cfg.iq` waiting ops).
    waiting: Vec<u64>,
    // Measurement window: commit counts at which the measured slice
    // starts and ends, and the cycles at which those commits happened.
    window_skip: u64,
    window_measure: Option<u64>,
    window_start: Option<Cycle>,
    window_end: Option<Cycle>,
    stats: CoreStats,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("rob_occupancy", &self.rob.len())
            .field("committed", &self.stats.committed.get())
            .finish()
    }
}

impl Core {
    /// A core executing `stream`.
    pub fn new(id: CoreId, cfg: CoreConfig, stream: Box<dyn InstrStream + Send>) -> Self {
        cfg.validate();
        Core {
            id,
            cfg,
            stream,
            rob: VecDeque::with_capacity(cfg.rob),
            head_seq: 0,
            next_seq: 0,
            fetch_line: None,
            fetch_pending: false,
            staged: None,
            fetch_stall_until: 0,
            halted_by_branch: None,
            loads_in_rob: 0,
            stores_in_rob: 0,
            waiting: Vec::with_capacity(cfg.iq),
            window_skip: 0,
            window_measure: None,
            window_start: None,
            window_end: None,
            stats: CoreStats::default(),
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Committed micro-op count.
    pub fn committed(&self) -> u64 {
        self.stats.committed.get()
    }

    /// The program label this core runs.
    pub fn program_label(&self) -> &str {
        self.stream.label()
    }

    /// Arm the measurement target: the cycle at which the core commits its
    /// `n`-th op is recorded (the paper's per-program 100 M-instruction
    /// slice endpoint). The core keeps running afterwards, like the
    /// paper's reload-and-continue methodology.
    pub fn set_target(&mut self, n: u64) {
        self.set_window(0, n);
    }

    /// Arm a measurement window: the first `skip` committed ops are
    /// warm-up (cold caches, empty queues); the slice of `measure` ops
    /// after them is what [`Core::measured_ipc`] reports. This substitutes
    /// for the paper's SimPoint slices, whose warm-up is implicit in their
    /// 10–100 M-instruction length.
    pub fn set_window(&mut self, skip: u64, measure: u64) {
        assert!(measure > 0, "target must be positive");
        assert!(self.stats.committed.get() == 0, "set window before running");
        self.window_skip = skip;
        self.window_measure = Some(measure);
        if skip == 0 {
            self.window_start = Some(0);
        }
    }

    /// The cycle at which the warm-up finished (window start), if reached.
    pub fn window_start_cycle(&self) -> Option<Cycle> {
        self.window_start
    }

    /// Re-baseline the measured slice to start `now`: the next
    /// `window_measure` committed ops are the measured slice, regardless
    /// of how many were committed before. The system calls this on every
    /// core at the global warm-up boundary (the cycle the *last* core
    /// crosses its warm-up count), so all measured slices run entirely
    /// under the measured policy and share one start cycle — a core that
    /// raced ahead during warm-up gets its provisional window discarded.
    pub fn begin_measured_slice(&mut self, now: Cycle) {
        self.window_skip = self.stats.committed.get();
        self.window_start = Some(now);
        self.window_end = None;
    }

    /// The cycle at which the measured slice completed, if it has.
    pub fn target_cycle(&self) -> Option<Cycle> {
        self.window_end
    }

    /// IPC over the measured window. Falls back to running IPC if the
    /// window has not completed.
    pub fn measured_ipc(&self) -> f64 {
        match (self.window_measure, self.window_start, self.window_end) {
            (Some(n), Some(s), Some(e)) if e > s => n as f64 / (e - s) as f64,
            _ => self.stats.ipc(),
        }
    }

    /// Serialize all mutable pipeline state — the instruction stream's
    /// generation cursor, ROB contents, fetch latches, occupancy
    /// counters, issue worklist, measurement window, and statistics — so
    /// a checkpointed system resumes this core bit-exactly. The config
    /// and core id are construction parameters, not state.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        self.stream.save_state(enc);
        enc.usize(self.rob.len());
        for e in &self.rob {
            e.kind.save_state(enc);
            enc.opt_u64(e.dep_seq);
            match e.state {
                OpState::Waiting => enc.u8(0),
                OpState::Executing { done_at } => {
                    enc.u8(1);
                    enc.u64(done_at);
                }
                OpState::WaitingMem => enc.u8(2),
                OpState::Done { at } => {
                    enc.u8(3);
                    enc.u64(at);
                }
            }
            enc.u64(e.seq);
        }
        enc.u64(self.head_seq);
        enc.u64(self.next_seq);
        enc.opt_u64(self.fetch_line);
        enc.bool(self.fetch_pending);
        match &self.staged {
            Some(op) => {
                enc.bool(true);
                op.save_state(enc);
            }
            None => enc.bool(false),
        }
        enc.u64(self.fetch_stall_until);
        enc.opt_u64(self.halted_by_branch);
        enc.usize(self.loads_in_rob);
        enc.usize(self.stores_in_rob);
        enc.u64s(&self.waiting);
        enc.u64(self.window_skip);
        enc.opt_u64(self.window_measure);
        enc.opt_u64(self.window_start);
        enc.opt_u64(self.window_end);
        for c in [
            &self.stats.committed,
            &self.stats.cycles,
            &self.stats.loads,
            &self.stats.stores,
            &self.stats.mispredicts,
            &self.stats.commit_stall_cycles,
        ] {
            c.save_state(enc);
        }
    }

    /// Restore state written by [`Core::save_state`] into a core built
    /// with the same configuration and stream parameters.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        self.stream.load_state(dec)?;
        let n = dec.usize()?;
        if n > self.cfg.rob {
            return Err(melreq_snap::SnapError::Invalid("ROB occupancy beyond capacity"));
        }
        self.rob.clear();
        for _ in 0..n {
            let kind = OpKind::load_state(dec)?;
            let dep_seq = dec.opt_u64()?;
            let state = match dec.u8()? {
                0 => OpState::Waiting,
                1 => OpState::Executing { done_at: dec.u64()? },
                2 => OpState::WaitingMem,
                3 => OpState::Done { at: dec.u64()? },
                t => return Err(melreq_snap::SnapError::BadTag(t)),
            };
            let seq = dec.u64()?;
            self.rob.push_back(RobEntry { kind, dep_seq, state, seq });
        }
        self.head_seq = dec.u64()?;
        self.next_seq = dec.u64()?;
        self.fetch_line = dec.opt_u64()?;
        self.fetch_pending = dec.bool()?;
        self.staged = if dec.bool()? { Some(MicroOp::load_state(dec)?) } else { None };
        self.fetch_stall_until = dec.u64()?;
        self.halted_by_branch = dec.opt_u64()?;
        self.loads_in_rob = dec.usize()?;
        self.stores_in_rob = dec.usize()?;
        self.waiting = dec.u64s()?;
        if self.waiting.len() > self.cfg.iq {
            return Err(melreq_snap::SnapError::Invalid("issue worklist beyond IQ capacity"));
        }
        self.window_skip = dec.u64()?;
        self.window_measure = dec.opt_u64()?;
        self.window_start = dec.opt_u64()?;
        self.window_end = dec.opt_u64()?;
        for c in [
            &mut self.stats.committed,
            &mut self.stats.cycles,
            &mut self.stats.loads,
            &mut self.stats.stores,
            &mut self.stats.mispredicts,
            &mut self.stats.commit_stall_cycles,
        ] {
            c.load_state(dec)?;
        }
        Ok(())
    }

    /// Resolve an outstanding memory access.
    pub fn finish(&mut self, token: CoreToken, now: Cycle) {
        match token {
            CoreToken::Load(seq) => {
                let idx = (seq - self.head_seq) as usize;
                let entry = self
                    .rob
                    .get_mut(idx)
                    .unwrap_or_else(|| panic!("load completion for retired seq {seq}"));
                debug_assert_eq!(entry.seq, seq);
                debug_assert_eq!(entry.state, OpState::WaitingMem, "unexpected load completion");
                entry.state = OpState::Done { at: now };
            }
            CoreToken::Fetch => {
                debug_assert!(self.fetch_pending, "fetch completion without pending fetch");
                self.fetch_pending = false;
                if let Some(op) = &self.staged {
                    self.fetch_line = Some(line_addr(op.pc));
                }
            }
        }
    }

    /// Advance the core by one cycle.
    pub fn tick(&mut self, now: Cycle, mem: &mut dyn CoreMemory) {
        self.stats.cycles.inc();
        self.commit(now, mem);
        self.issue(now, mem);
        self.dispatch(now, mem);
    }

    /// Account for `cycles` skipped cycles during which this core was
    /// provably quiescent (see [`Core::next_event_at`]): the per-cycle
    /// counters advance exactly as `cycles` no-op [`Core::tick`] calls
    /// would have advanced them — a quiescent cycle by construction
    /// simulates, retires, and issues nothing, so only `cycles` and
    /// `commit_stall_cycles` move.
    pub fn note_skip(&mut self, cycles: u64) {
        self.stats.cycles.add(cycles);
        self.stats.commit_stall_cycles.add(cycles);
    }

    /// O(1) pre-filter for [`Core::next_event_at`]: `true` when the core
    /// can certainly act this cycle (a resolved head can retire or retry
    /// a blocked store, or the front end can dispatch). `false` is *not*
    /// "quiescent" — issue may still be possible — it only means the
    /// per-op scan in `next_event_at` is needed to decide. The system loop
    /// calls this for every core before paying for any full bound.
    pub fn can_act_now(&self, now: Cycle) -> bool {
        if let Some(head) = self.rob.front() {
            if matches!(Self::resolved_at(head), Some(at) if at <= now) {
                return true;
            }
        }
        if !self.fetch_pending
            && self.halted_by_branch.is_none()
            && self.rob.len() < self.cfg.rob
            && self.waiting.len() < self.cfg.iq
            && now >= self.fetch_stall_until
        {
            let staged_blocked = match &self.staged {
                Some(op) => match op.kind {
                    OpKind::Load { .. } => self.loads_in_rob >= self.cfg.lq,
                    OpKind::Store { .. } => self.stores_in_rob >= self.cfg.sq,
                    _ => false,
                },
                None => false,
            };
            if !staged_blocked {
                return true;
            }
        }
        false
    }

    /// Conservative lower bound on the next cycle at which a
    /// [`Core::tick`] could change any state (commit, issue, dispatch, or
    /// a statistic other than the cycle counters).
    ///
    /// * `Some(t)` with `t == now` — the core may act this very cycle;
    ///   the caller must tick normally.
    /// * `Some(t)` with `t > now` — the core provably cannot act before
    ///   `t` *unless* an outstanding memory access completes first; the
    ///   caller covers that case with the hierarchy's own bound.
    /// * `None` — the core is blocked purely on memory (or fully drained)
    ///   and has no internally known wake-up time.
    ///
    /// The bound is intentionally conservative: returning `now` when
    /// nothing would actually happen only costs a probe tick, while
    /// overshooting would change behaviour and is never allowed.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let mut bound: Option<Cycle> = None;
        let mut fold = |t: Cycle| {
            bound = Some(bound.map_or(t, |b: Cycle| b.min(t)));
        };
        // Commit: a resolved head retires (or retries a blocked store)
        // this cycle; an executing head wakes commit when it finishes.
        // A non-head op finishing execution mutates nothing — it only
        // matters once it reaches the head (covered here) or as a
        // producer of a waiting op (covered below), so those done-times
        // need no bound of their own.
        if let Some(head) = self.rob.front() {
            match Self::resolved_at(head) {
                Some(at) if at <= now => return Some(now),
                Some(at) => fold(at),
                None => {}
            }
        }
        // Dispatch: open unless the front end is stalled or a structural
        // limit binds. A front-end stall has a known expiry; ROB/IQ/LQ/SQ
        // limits clear only at commit, which the other bounds cover.
        if !self.fetch_pending
            && self.halted_by_branch.is_none()
            && self.rob.len() < self.cfg.rob
            && self.waiting.len() < self.cfg.iq
        {
            if now < self.fetch_stall_until {
                fold(self.fetch_stall_until);
            } else {
                let staged_blocked = match &self.staged {
                    Some(op) => match op.kind {
                        OpKind::Load { .. } => self.loads_in_rob >= self.cfg.lq,
                        OpKind::Store { .. } => self.stores_in_rob >= self.cfg.sq,
                        _ => false,
                    },
                    None => false,
                };
                if !staged_blocked {
                    return Some(now);
                }
            }
        }
        // Issue: a waiting op with ready operands can issue (or retry a
        // blocked load) this cycle. One whose producer is still executing
        // becomes ready at the producer's completion; producers waiting
        // on memory (and waiting producers' own wake-ups) are covered by
        // the hierarchy's bound and this list respectively.
        for &seq in &self.waiting {
            let e = &self.rob[(seq - self.head_seq) as usize];
            match e.dep_seq {
                None => return Some(now),
                Some(p) if p < self.head_seq => return Some(now),
                Some(p) => match Self::resolved_at(&self.rob[(p - self.head_seq) as usize]) {
                    Some(at) if at <= now => return Some(now),
                    Some(at) => fold(at),
                    None => {}
                },
            }
        }
        bound
    }

    /// When `entry`'s result is (or will be) available, if known.
    #[inline]
    fn resolved_at(entry: &RobEntry) -> Option<Cycle> {
        match entry.state {
            OpState::Executing { done_at } => Some(done_at),
            OpState::Done { at } => Some(at),
            _ => None,
        }
    }

    fn commit(&mut self, now: Cycle, mem: &mut dyn CoreMemory) {
        let mut retired = 0;
        while retired < self.cfg.width {
            let Some(head) = self.rob.front() else { break };
            match Self::resolved_at(head) {
                Some(at) if at <= now => {}
                _ => break,
            }
            // Stores write into the hierarchy at retirement; back-pressure
            // stalls commit in order.
            if let OpKind::Store { addr } = head.kind {
                if !mem.store(self.id, addr, now) {
                    break;
                }
                self.stats.stores.inc();
            }
            let head = self.rob.pop_front().expect("checked front");
            match head.kind {
                OpKind::Load { .. } => self.loads_in_rob -= 1,
                OpKind::Store { .. } => self.stores_in_rob -= 1,
                _ => {}
            }
            self.head_seq += 1;
            retired += 1;
            self.stats.committed.inc();
            let c = self.stats.committed.get();
            if self.window_measure.is_some() {
                if c == self.window_skip {
                    self.window_start = Some(now);
                }
                if Some(c) == self.window_measure.map(|m| m + self.window_skip) {
                    self.window_end = Some(now.max(self.window_start.unwrap_or(0) + 1));
                }
            }
        }
        if retired == 0 {
            self.stats.commit_stall_cycles.inc();
        }
    }

    /// Whether the producer of `entry` has (or will have) data by `now`.
    fn operands_ready(&self, entry: &RobEntry, now: Cycle) -> bool {
        match entry.dep_seq {
            None => true,
            Some(p) if p < self.head_seq => true, // producer already retired
            Some(p) => {
                let producer = &self.rob[(p - self.head_seq) as usize];
                matches!(Self::resolved_at(producer), Some(at) if at <= now)
            }
        }
    }

    fn issue(&mut self, now: Cycle, mem: &mut dyn CoreMemory) {
        if self.waiting.is_empty() {
            return;
        }
        let mut budget = self.cfg.width;
        let mut fu = [self.cfg.int_alu, self.cfg.int_mult, self.cfg.fp_alu, self.cfg.fp_mult];
        // Walk the waiting-op worklist in program order, compacting out
        // the ops that issue. The list never exceeds the IQ size, so this
        // is the old bounded ROB scan minus the non-waiting entries.
        let mut kept = 0;
        for r in 0..self.waiting.len() {
            let seq = self.waiting[r];
            let idx = (seq - self.head_seq) as usize;
            let entry = self.rob[idx];
            debug_assert_eq!(entry.state, OpState::Waiting, "stale waiting-list entry");
            let mut keep = budget == 0;
            if !keep {
                keep = !self.try_issue_one(&entry, idx, &mut fu, now, mem);
                if !keep {
                    budget -= 1;
                }
            }
            if keep {
                self.waiting[kept] = seq;
                kept += 1;
            }
        }
        self.waiting.truncate(kept);
    }

    /// Attempt to issue one waiting op; returns whether it left `Waiting`.
    fn try_issue_one(
        &mut self,
        entry: &RobEntry,
        idx: usize,
        fu: &mut [usize; 4],
        now: Cycle,
        mem: &mut dyn CoreMemory,
    ) -> bool {
        if !self.operands_ready(entry, now) {
            return false;
        }
        // Functional-unit check (loads/stores use an IntALU for
        // address generation; branches use an IntALU).
        let fu_idx = match entry.kind {
            OpKind::IntMult => 1,
            OpKind::FpAlu => 2,
            OpKind::FpMult => 3,
            _ => 0,
        };
        if fu[fu_idx] == 0 {
            return false;
        }
        let new_state = match entry.kind {
            OpKind::Load { addr } => {
                match mem.load(self.id, CoreToken::Load(entry.seq), addr, now) {
                    MemResponse::HitAt(at) => {
                        self.stats.loads.inc();
                        OpState::Executing { done_at: at }
                    }
                    MemResponse::Pending => {
                        self.stats.loads.inc();
                        OpState::WaitingMem
                    }
                    // Structural stall: retry next cycle, keep IQ slot.
                    MemResponse::Blocked => return false,
                }
            }
            kind => {
                let done_at = now + kind.exec_latency();
                if let OpKind::Branch { mispredict: true } = kind {
                    // The redirect resolves when the branch executes;
                    // then the front-end refills.
                    if self.halted_by_branch == Some(entry.seq) {
                        self.halted_by_branch = None;
                        self.fetch_stall_until =
                            self.fetch_stall_until.max(done_at + self.cfg.redirect_penalty);
                    }
                }
                OpState::Executing { done_at }
            }
        };
        fu[fu_idx] -= 1;
        self.rob[idx].state = new_state;
        true
    }

    fn dispatch(&mut self, now: Cycle, mem: &mut dyn CoreMemory) {
        if self.fetch_pending || self.halted_by_branch.is_some() || now < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.cfg.width {
            if self.rob.len() >= self.cfg.rob || self.waiting.len() >= self.cfg.iq {
                break;
            }
            let op = match self.staged.take() {
                Some(op) => op,
                None => self.stream.next_op(),
            };
            // Structural queue checks.
            let blocked = match op.kind {
                OpKind::Load { .. } => self.loads_in_rob >= self.cfg.lq,
                OpKind::Store { .. } => self.stores_in_rob >= self.cfg.sq,
                _ => false,
            };
            if blocked {
                self.staged = Some(op);
                break;
            }
            // Instruction fetch: crossing into a new line requires L1I.
            let linea = line_addr(op.pc);
            if self.fetch_line != Some(linea) {
                match mem.ifetch(self.id, CoreToken::Fetch, linea, now) {
                    MemResponse::HitAt(_) => self.fetch_line = Some(linea),
                    MemResponse::Pending => {
                        self.fetch_pending = true;
                        self.staged = Some(op);
                        break;
                    }
                    MemResponse::Blocked => {
                        self.staged = Some(op);
                        break;
                    }
                }
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let dep_seq = if op.dep_dist > 0 && seq >= op.dep_dist as u64 {
                Some(seq - op.dep_dist as u64)
            } else {
                None
            };
            match op.kind {
                OpKind::Load { .. } => self.loads_in_rob += 1,
                OpKind::Store { .. } => self.stores_in_rob += 1,
                OpKind::Branch { mispredict } if mispredict => {
                    self.stats.mispredicts.inc();
                    self.halted_by_branch = Some(seq);
                }
                _ => {}
            }
            self.waiting.push(seq);
            self.rob.push_back(RobEntry { kind: op.kind, dep_seq, state: OpState::Waiting, seq });
            if self.halted_by_branch.is_some() {
                break; // cannot fetch past an unresolved mispredict
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::PerfectMemory;
    use melreq_trace::MicroOp;

    /// A scripted instruction stream for deterministic pipeline tests.
    struct Script {
        ops: Vec<MicroOp>,
        i: usize,
    }

    impl Script {
        fn cyclic(ops: Vec<MicroOp>) -> Self {
            Script { ops, i: 0 }
        }
    }

    impl InstrStream for Script {
        fn next_op(&mut self) -> MicroOp {
            let op = self.ops[self.i % self.ops.len()];
            self.i += 1;
            op
        }

        fn label(&self) -> &str {
            "script"
        }

        fn save_state(&self, enc: &mut melreq_snap::Enc) {
            enc.usize(self.i);
        }

        fn load_state(
            &mut self,
            dec: &mut melreq_snap::Dec<'_>,
        ) -> Result<(), melreq_snap::SnapError> {
            self.i = dec.usize()?;
            Ok(())
        }
    }

    fn alu(pc: Addr) -> MicroOp {
        MicroOp { pc, kind: OpKind::IntAlu, dep_dist: 0 }
    }

    fn run(core: &mut Core, mem: &mut PerfectMemory, cycles: Cycle) {
        for now in 0..cycles {
            core.tick(now, mem);
        }
    }

    #[test]
    fn independent_alu_ops_reach_full_width() {
        let ops = (0..64).map(|i| alu(0x1000 + i * 4)).collect();
        let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)));
        let mut mem = PerfectMemory { latency: 3 };
        run(&mut core, &mut mem, 1000);
        let ipc = core.stats().ipc();
        assert!(ipc > 3.5, "independent ALU IPC should approach 4, got {ipc}");
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        let ops = (0..64)
            .map(|i| MicroOp { pc: 0x1000 + i * 4, kind: OpKind::IntAlu, dep_dist: 1 })
            .collect();
        let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)));
        let mut mem = PerfectMemory { latency: 3 };
        run(&mut core, &mut mem, 2000);
        let ipc = core.stats().ipc();
        assert!(ipc < 1.2, "serial chain must bound IPC near 1, got {ipc}");
        assert!(ipc > 0.5, "chain should still make progress, got {ipc}");
    }

    #[test]
    fn loads_overlap_when_independent() {
        // All loads, no deps: MLP limited by LQ/width, not latency.
        let ops = (0..64)
            .map(|i| MicroOp {
                pc: 0x1000 + i * 4,
                kind: OpKind::Load { addr: 0x10_0000 + i * 64 },
                dep_dist: 0,
            })
            .collect();
        let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)));
        let mut mem = PerfectMemory { latency: 50 };
        run(&mut core, &mut mem, 4000);
        let ipc = core.stats().ipc();
        // Each load occupies an LQ entry from dispatch to in-order commit
        // (~latency cycles), so MLP saturates at LQ/latency = 32/50 = 0.64
        // loads per cycle. The model should get close to that bound —
        // vastly above the 1/50 = 0.02 of serialized loads.
        assert!(ipc > 0.55, "independent loads should overlap to ~0.64, got {ipc}");
        assert!(ipc < 0.70, "IPC cannot beat the LQ/latency bound, got {ipc}");
    }

    #[test]
    fn dependent_loads_serialize() {
        let ops = (0..64)
            .map(|i| MicroOp {
                pc: 0x1000 + i * 4,
                kind: OpKind::Load { addr: 0x10_0000 + i * 64 },
                dep_dist: 1,
            })
            .collect();
        let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)));
        let mut mem = PerfectMemory { latency: 50 };
        run(&mut core, &mut mem, 10_000);
        let ipc = core.stats().ipc();
        assert!(ipc < 0.05, "chained 50-cycle loads must crawl, got {ipc}");
    }

    #[test]
    fn ipc_responds_to_memory_latency() {
        let mk = || {
            let ops: Vec<MicroOp> = (0..64)
                .map(|i| {
                    if i % 4 == 0 {
                        MicroOp {
                            pc: 0x1000 + i * 4,
                            kind: OpKind::Load { addr: 0x10_0000 + i * 64 },
                            dep_dist: 0,
                        }
                    } else {
                        MicroOp { pc: 0x1000 + i * 4, kind: OpKind::IntAlu, dep_dist: 1 }
                    }
                })
                .collect();
            Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)))
        };
        let mut fast_core = mk();
        let mut slow_core = mk();
        run(&mut fast_core, &mut PerfectMemory { latency: 3 }, 5000);
        run(&mut slow_core, &mut PerfectMemory { latency: 300 }, 5000);
        assert!(
            fast_core.stats().ipc() > 1.5 * slow_core.stats().ipc(),
            "IPC must degrade with memory latency: fast {} vs slow {}",
            fast_core.stats().ipc(),
            slow_core.stats().ipc()
        );
    }

    #[test]
    fn mispredicts_cost_fetch_bubbles() {
        let mk = |mispredict| {
            let ops: Vec<MicroOp> = (0..64)
                .map(|i| {
                    if i % 8 == 0 {
                        MicroOp {
                            pc: 0x1000 + i * 4,
                            kind: OpKind::Branch { mispredict },
                            dep_dist: 0,
                        }
                    } else {
                        alu(0x1000 + i * 4)
                    }
                })
                .collect();
            Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)))
        };
        let mut good = mk(false);
        let mut bad = mk(true);
        run(&mut good, &mut PerfectMemory { latency: 3 }, 3000);
        run(&mut bad, &mut PerfectMemory { latency: 3 }, 3000);
        assert!(
            good.stats().ipc() > 1.5 * bad.stats().ipc(),
            "mispredicts must hurt: {} vs {}",
            good.stats().ipc(),
            bad.stats().ipc()
        );
        assert!(bad.stats().mispredicts.get() > 0);
    }

    #[test]
    fn stores_retire_through_memory() {
        let ops = (0..16)
            .map(|i| MicroOp {
                pc: 0x1000 + i * 4,
                kind: OpKind::Store { addr: 0x20_0000 + i * 64 },
                dep_dist: 0,
            })
            .collect();
        let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)));
        let mut mem = PerfectMemory { latency: 3 };
        run(&mut core, &mut mem, 500);
        assert!(core.stats().stores.get() > 100);
    }

    #[test]
    fn target_cycle_recorded_once() {
        let ops = (0..16).map(|i| alu(0x1000 + i * 4)).collect();
        let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)));
        core.set_target(100);
        let mut mem = PerfectMemory { latency: 3 };
        run(&mut core, &mut mem, 500);
        let at = core.target_cycle().expect("target should be hit");
        assert!(at < 200, "100 ops at ~IPC 4 should finish quickly, got {at}");
        let ipc = core.measured_ipc();
        assert!(ipc > 2.0);
        // Core keeps running past the target (reload-and-continue).
        assert!(core.committed() > 100);
    }

    #[test]
    fn measured_ipc_falls_back_to_running_ipc() {
        let ops = (0..16).map(|i| alu(0x1000 + i * 4)).collect();
        let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)));
        core.set_target(1_000_000);
        let mut mem = PerfectMemory { latency: 3 };
        run(&mut core, &mut mem, 100);
        assert!(core.target_cycle().is_none());
        assert!(core.measured_ipc() > 0.0);
    }

    #[test]
    #[should_panic(expected = "target must be positive")]
    fn zero_target_rejected() {
        let ops = vec![alu(0x1000)];
        let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Script::cyclic(ops)));
        core.set_target(0);
    }
}
