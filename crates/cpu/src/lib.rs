//! Cycle-level out-of-order core model.
//!
//! Substitutes for the paper's M5 cores (Table 1: 4-issue, 16-stage,
//! ROB 196, IQ 64, LQ/SQ 32/32, 4 IntALU / 2 IntMult / 2 FPALU / 1 FPMult).
//! The model is *interval-style*: it tracks, per in-flight micro-op, when
//! its operands are ready and when it completes, enforcing the structural
//! limits (widths, queue sizes, functional units, MSHR back-pressure from
//! the hierarchy) that determine how IPC responds to memory latency and
//! how much memory-level parallelism escapes to the DRAM controller — the
//! two couplings the scheduling study depends on.
//!
//! The core talks to the memory hierarchy through the [`port::CoreMemory`]
//! trait; `melreq-core` implements it over the cache crate and the memory
//! controller.

pub mod config;
pub mod core;
pub mod port;

pub use config::CoreConfig;
pub use core::{Core, CoreStats};
pub use port::{CoreMemory, CoreToken, MemResponse, PerfectMemory};
