//! Property-based tests of the out-of-order core model: liveness and
//! structural bounds under arbitrary instruction mixes.

use melreq_cpu::{Core, CoreConfig, PerfectMemory};
use melreq_stats::types::CoreId;
use melreq_trace::{InstrStream, MicroOp, OpKind};
use proptest::prelude::*;

/// A stream cycling over a fixed op vector.
struct Cyclic {
    ops: Vec<MicroOp>,
    i: usize,
}

impl InstrStream for Cyclic {
    fn next_op(&mut self) -> MicroOp {
        let op = self.ops[self.i % self.ops.len()];
        self.i += 1;
        op
    }

    fn label(&self) -> &str {
        "cyclic"
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.i);
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        self.i = dec.usize()?;
        Ok(())
    }
}

fn arb_op(i: u64) -> impl Strategy<Value = MicroOp> {
    (0u8..7, 0u16..8).prop_map(move |(k, dep)| {
        let kind = match k {
            0 => OpKind::IntAlu,
            1 => OpKind::IntMult,
            2 => OpKind::FpAlu,
            3 => OpKind::FpMult,
            4 => OpKind::Branch { mispredict: dep == 0 },
            5 => OpKind::Load { addr: 0x10_0000 + (i * 64) % 4096 },
            _ => OpKind::Store { addr: 0x20_0000 + (i * 64) % 4096 },
        };
        MicroOp { pc: 0x1000 + (i * 4) % 8192, kind, dep_dist: dep }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Liveness: with a perfect memory, any op mix keeps committing —
    /// the pipeline can never wedge.
    #[test]
    fn core_never_deadlocks(
        ops in proptest::collection::vec((0u8..7, 0u16..8), 8..64),
        latency in 1u64..100
    ) {
        let ops: Vec<MicroOp> = ops
            .iter()
            .enumerate()
            .map(|(i, &(k, dep))| {
                let kind = match k {
                    0 => OpKind::IntAlu,
                    1 => OpKind::IntMult,
                    2 => OpKind::FpAlu,
                    3 => OpKind::FpMult,
                    4 => OpKind::Branch { mispredict: dep == 0 },
                    5 => OpKind::Load { addr: 0x10_0000 + (i as u64 * 64) % 4096 },
                    _ => OpKind::Store { addr: 0x20_0000 + (i as u64 * 64) % 4096 },
                };
                MicroOp { pc: 0x1000 + (i as u64 * 4), kind, dep_dist: dep }
            })
            .collect();
        let mut core = Core::new(
            CoreId(0),
            CoreConfig::paper(),
            Box::new(Cyclic { ops, i: 0 }),
        );
        let mut mem = PerfectMemory { latency };
        let mut last = 0;
        for now in 0..20_000u64 {
            core.tick(now, &mut mem);
            if now % 5000 == 4999 {
                let c = core.committed();
                prop_assert!(c > last, "no commits in 5000 cycles (at {now})");
                last = c;
            }
        }
    }

    /// IPC can never exceed the pipeline width.
    #[test]
    fn ipc_bounded_by_width(dep in 0u16..4, latency in 1u64..20) {
        let ops: Vec<MicroOp> = (0..32)
            .map(|i| MicroOp { pc: 0x1000 + i * 4, kind: OpKind::IntAlu, dep_dist: dep })
            .collect();
        let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Cyclic { ops, i: 0 }));
        let mut mem = PerfectMemory { latency };
        for now in 0..5000u64 {
            core.tick(now, &mut mem);
        }
        prop_assert!(core.stats().ipc() <= 4.0 + 1e-9);
    }
}

/// Sanity: see `arb_op` is exercised (silences dead-code in some builds).
#[test]
fn arb_op_strategy_builds() {
    use proptest::strategy::{Strategy, ValueTree};
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let v = arb_op(3).new_tree(&mut runner).expect("tree").current();
    assert!(v.pc >= 0x1000);
}

/// A memory that blocks the first `n` attempts of every access, to
/// exercise the core's retry paths.
struct FlakyMemory {
    reject_next: u32,
}

impl melreq_cpu::CoreMemory for FlakyMemory {
    fn load(
        &mut self,
        _c: CoreId,
        _t: melreq_cpu::CoreToken,
        _a: u64,
        now: u64,
    ) -> melreq_cpu::MemResponse {
        if self.reject_next > 0 {
            self.reject_next -= 1;
            melreq_cpu::MemResponse::Blocked
        } else {
            self.reject_next = 2;
            melreq_cpu::MemResponse::HitAt(now + 5)
        }
    }

    fn ifetch(
        &mut self,
        _c: CoreId,
        _t: melreq_cpu::CoreToken,
        _a: u64,
        now: u64,
    ) -> melreq_cpu::MemResponse {
        melreq_cpu::MemResponse::HitAt(now + 1)
    }

    fn store(&mut self, _c: CoreId, _a: u64, _now: u64) -> bool {
        if self.reject_next > 0 {
            self.reject_next -= 1;
            false
        } else {
            self.reject_next = 1;
            true
        }
    }
}

#[test]
fn core_survives_structural_rejections() {
    // Loads and stores that get Blocked / rejected must be retried, not
    // lost: the core still commits everything.
    let ops: Vec<MicroOp> = (0..32)
        .map(|i| {
            let kind = match i % 3 {
                0 => OpKind::Load { addr: 0x10_0000 + i * 64 },
                1 => OpKind::Store { addr: 0x20_0000 + i * 64 },
                _ => OpKind::IntAlu,
            };
            MicroOp { pc: 0x1000 + i * 4, kind, dep_dist: 0 }
        })
        .collect();
    let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Cyclic { ops, i: 0 }));
    let mut mem = FlakyMemory { reject_next: 3 };
    for now in 0..20_000u64 {
        core.tick(now, &mut mem);
    }
    assert!(
        core.committed() > 1_000,
        "core wedged under structural rejections: {} commits",
        core.committed()
    );
}

#[test]
fn pending_ifetch_stalls_then_resumes() {
    // An ifetch that goes Pending must halt dispatch until finish() is
    // called, then dispatch resumes.
    struct OneMissIcache {
        missed: bool,
    }
    impl melreq_cpu::CoreMemory for OneMissIcache {
        fn load(
            &mut self,
            _c: CoreId,
            _t: melreq_cpu::CoreToken,
            _a: u64,
            now: u64,
        ) -> melreq_cpu::MemResponse {
            melreq_cpu::MemResponse::HitAt(now + 3)
        }
        fn ifetch(
            &mut self,
            _c: CoreId,
            _t: melreq_cpu::CoreToken,
            _a: u64,
            now: u64,
        ) -> melreq_cpu::MemResponse {
            if self.missed {
                melreq_cpu::MemResponse::HitAt(now + 1)
            } else {
                self.missed = true;
                melreq_cpu::MemResponse::Pending
            }
        }
        fn store(&mut self, _c: CoreId, _a: u64, _now: u64) -> bool {
            true
        }
    }
    let ops: Vec<MicroOp> = (0..16)
        .map(|i| MicroOp { pc: 0x1000 + i * 4, kind: OpKind::IntAlu, dep_dist: 0 })
        .collect();
    let mut core = Core::new(CoreId(0), CoreConfig::paper(), Box::new(Cyclic { ops, i: 0 }));
    let mut mem = OneMissIcache { missed: false };
    // The very first dispatch misses the I-cache: nothing commits.
    for now in 0..50u64 {
        core.tick(now, &mut mem);
    }
    assert_eq!(core.committed(), 0, "cannot commit before the fetch returns");
    core.finish(melreq_cpu::CoreToken::Fetch, 50);
    for now in 51..300u64 {
        core.tick(now, &mut mem);
    }
    assert!(core.committed() > 100, "core did not resume after the fill");
}
