//! Property-based tests of the cache array and MSHR invariants.

use melreq_cache::{AllocOutcome, CacheArray, CacheConfig, MshrFile};
use proptest::prelude::*;
use std::collections::HashMap;

fn tiny_cfg() -> CacheConfig {
    CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, hit_latency: 1, mshrs: 4 }
}

proptest! {
    /// A fill makes the line present; occupancy never exceeds capacity.
    #[test]
    fn fill_installs_and_capacity_bounds(
        addrs in proptest::collection::vec(0u64..0x10000, 1..200)
    ) {
        let cfg = tiny_cfg();
        let mut c = CacheArray::new(cfg);
        let capacity = (cfg.size_bytes / cfg.line_bytes) as usize;
        for a in addrs {
            c.fill(a, false);
            prop_assert!(c.probe(a), "line vanished right after fill");
            prop_assert!(c.occupancy() <= capacity);
        }
    }

    /// The cache agrees with a reference model: a line is present iff it
    /// is among the `ways` most-recently-used lines of its set.
    #[test]
    fn lru_matches_reference_model(
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..300)
    ) {
        let cfg = tiny_cfg(); // 8 sets x 2 ways
        let mut c = CacheArray::new(cfg);
        // Reference: per set, a recency-ordered list of lines.
        let mut sets: HashMap<u64, Vec<u64>> = HashMap::new();
        for (line_idx, is_fill) in ops {
            let addr = line_idx * 64;
            let set = line_idx % 8;
            let entry = sets.entry(set).or_default();
            if is_fill {
                c.fill(addr, false);
                entry.retain(|&l| l != line_idx);
                entry.push(line_idx);
                entry.reverse();
                entry.truncate(2);
                entry.reverse();
            } else {
                let hit = c.access(addr, false);
                let ref_hit = entry.contains(&line_idx);
                prop_assert_eq!(hit, ref_hit, "hit mismatch for line {}", line_idx);
                if ref_hit {
                    entry.retain(|&l| l != line_idx);
                    entry.push(line_idx);
                }
            }
            // Present-set equality.
            for &l in entry.iter() {
                prop_assert!(c.probe(l * 64), "reference says line {} present", l);
            }
        }
    }

    /// Dirty data is never lost: every line written is either still
    /// present (dirty) or was reported as a dirty victim.
    #[test]
    fn dirty_lines_are_never_silently_dropped(
        writes in proptest::collection::vec(0u64..64, 1..100),
        fills in proptest::collection::vec(64u64..128, 1..100)
    ) {
        let mut c = CacheArray::new(tiny_cfg());
        let mut dirty_out = Vec::new();
        for w in &writes {
            if let Some(ev) = c.fill(w * 64, true) {
                if ev.dirty {
                    dirty_out.push(ev.line_addr / 64);
                }
            }
        }
        for f in fills {
            if let Some(ev) = c.fill(f * 64, false) {
                if ev.dirty {
                    dirty_out.push(ev.line_addr / 64);
                }
            }
        }
        for w in writes {
            let still_in = c.probe(w * 64);
            let written_back = dirty_out.contains(&w);
            prop_assert!(
                still_in || written_back,
                "dirty line {w} neither cached nor written back"
            );
        }
    }

    /// MSHR conservation: every allocated waiter is returned by exactly
    /// one complete(), and the file is empty afterwards.
    #[test]
    fn mshr_waiters_conserved(
        lines in proptest::collection::vec(0u64..16, 1..64)
    ) {
        let mut m: MshrFile<usize> = MshrFile::new(16);
        let mut expected: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, l) in lines.iter().enumerate() {
            match m.allocate(l * 64, i) {
                AllocOutcome::Primary | AllocOutcome::Merged => {
                    expected.entry(*l).or_default().push(i);
                }
                AllocOutcome::Full => {}
            }
        }
        let mut returned = 0;
        for (l, want) in &expected {
            let got = m.complete(l * 64);
            prop_assert_eq!(&got, want, "waiter set mismatch for line {}", l);
            returned += got.len();
        }
        prop_assert_eq!(returned, expected.values().map(Vec::len).sum::<usize>());
        prop_assert!(m.is_empty());
    }
}
