//! Cache geometry and latency configuration.

use melreq_stats::types::{Cycle, CACHE_LINE_BYTES};

/// Geometry + latency of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: Cycle,
    /// MSHR entries (concurrent outstanding misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Table 1 L1 instruction cache: 64 KB, 2-way, 1-cycle, 8 MSHRs.
    pub fn l1i_paper() -> Self {
        CacheConfig { size_bytes: 64 << 10, ways: 2, line_bytes: 64, hit_latency: 1, mshrs: 8 }
    }

    /// Table 1 L1 data cache: 64 KB, 2-way, 3-cycle, 32 MSHRs.
    pub fn l1d_paper() -> Self {
        CacheConfig { size_bytes: 64 << 10, ways: 2, line_bytes: 64, hit_latency: 3, mshrs: 32 }
    }

    /// Table 1 shared L2: 4 MB, 4-way, 15-cycle, 64 MSHRs.
    pub fn l2_paper() -> Self {
        CacheConfig { size_bytes: 4 << 20, ways: 4, line_bytes: 64, hit_latency: 15, mshrs: 64 }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines as usize / self.ways;
        debug_assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Validate invariants (power-of-two sets, non-zero sizes).
    pub fn validate(&self) {
        assert!(self.line_bytes == CACHE_LINE_BYTES, "only 64 B lines are modeled");
        assert!(self.ways >= 1, "need at least one way");
        assert!(self.size_bytes >= self.line_bytes * self.ways as u64, "cache too small");
        assert!(
            (self.size_bytes / self.line_bytes).is_multiple_of(self.ways as u64),
            "capacity must divide into ways"
        );
        assert!(self.sets().is_power_of_two(), "set count must be a power of two");
        assert!(self.mshrs >= 1, "need at least one MSHR");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid() {
        for c in [CacheConfig::l1i_paper(), CacheConfig::l1d_paper(), CacheConfig::l2_paper()] {
            c.validate();
        }
    }

    #[test]
    fn set_counts() {
        assert_eq!(CacheConfig::l1d_paper().sets(), 512);
        assert_eq!(CacheConfig::l2_paper().sets(), 16384);
    }

    #[test]
    fn latencies_match_table_1() {
        assert_eq!(CacheConfig::l1i_paper().hit_latency, 1);
        assert_eq!(CacheConfig::l1d_paper().hit_latency, 3);
        assert_eq!(CacheConfig::l2_paper().hit_latency, 15);
    }

    #[test]
    #[should_panic(expected = "64 B lines")]
    fn rejects_other_line_sizes() {
        let mut c = CacheConfig::l1d_paper();
        c.line_bytes = 32;
        c.validate();
    }
}
