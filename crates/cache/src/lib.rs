//! Set-associative write-back caches with MSHRs.
//!
//! Implements the cache hierarchy components of Table 1:
//!
//! * per-core L1 instruction and data caches — 64 KB, 2-way, 64 B lines
//!   (1-cycle I / 3-cycle D hit latency);
//! * a shared L2 — 4 MB, 4-way, 64 B lines, 15-cycle hit latency;
//! * miss-status holding registers — 8 (L1I), 32 (L1D), 64 (L2) entries.
//!
//! This crate provides the *components* ([`CacheArray`], [`MshrFile`],
//! [`CacheConfig`]); the composition into a two-level hierarchy with a
//! memory controller underneath lives in `melreq-core`, which owns the
//! inter-level transaction plumbing.
//!
//! Caches are write-back, write-allocate, true-LRU. Replacement returns
//! dirty victims to the caller, which is responsible for writing them to
//! the next level (that is where DRAM write traffic comes from).

pub mod array;
pub mod config;
pub mod mshr;

pub use array::{CacheArray, Evicted};
pub use config::CacheConfig;
pub use mshr::{AllocOutcome, MshrFile};
