//! Miss-status holding registers.
//!
//! An MSHR file tracks outstanding misses per line so that (a) secondary
//! misses to an in-flight line merge instead of issuing duplicate memory
//! transactions, and (b) the number of concurrent misses — the core's
//! memory-level parallelism — is bounded by the entry count (Table 1:
//! 8 for L1I, 32 for L1D, 64 for L2).

use melreq_stats::types::Addr;
use melreq_stats::{line_addr, Counter};

/// Outcome of an allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOutcome {
    /// A new entry was created: the caller must launch the lower-level
    /// fetch for this line.
    Primary,
    /// The line already had an outstanding miss: the waiter was merged.
    Merged,
    /// No entry available: the requester must stall and retry.
    Full,
}

#[derive(Debug, Clone)]
struct Entry<W> {
    line: Addr,
    waiters: Vec<W>,
}

/// MSHR file generic over the waiter handle type `W` (the hierarchy
/// stores whatever it needs to resume the stalled access).
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    entries: Vec<Entry<W>>,
    capacity: usize, // melreq-allow(S01): construction-time bound; load_state validates against it
    /// Merges observed (secondary misses).
    pub merges: Counter,
}

impl<W> MshrFile<W> {
    /// An empty file with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "need at least one MSHR");
        MshrFile { entries: Vec::with_capacity(capacity), capacity, merges: Counter::new() }
    }

    /// Number of outstanding lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every entry is in use.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Whether `addr`'s line has an outstanding miss.
    pub fn contains(&self, addr: Addr) -> bool {
        let line = line_addr(addr);
        self.entries.iter().any(|e| e.line == line)
    }

    /// Try to register `waiter` for `addr`'s line.
    pub fn allocate(&mut self, addr: Addr, waiter: W) -> AllocOutcome {
        let line = line_addr(addr);
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.waiters.push(waiter);
            self.merges.inc();
            return AllocOutcome::Merged;
        }
        if self.is_full() {
            return AllocOutcome::Full;
        }
        self.entries.push(Entry { line, waiters: vec![waiter] });
        AllocOutcome::Primary
    }

    /// Serialize outstanding entries and the merge counter. Waiter
    /// handles are opaque to this crate, so the owner supplies `save_w`.
    pub fn save_state(
        &self,
        enc: &mut melreq_snap::Enc,
        mut save_w: impl FnMut(&W, &mut melreq_snap::Enc),
    ) {
        enc.usize(self.entries.len());
        for e in &self.entries {
            enc.u64(e.line);
            enc.usize(e.waiters.len());
            for w in &e.waiters {
                save_w(w, enc);
            }
        }
        self.merges.save_state(enc);
    }

    /// Restore state written by [`MshrFile::save_state`] into a file with
    /// the same capacity, decoding waiters with `load_w`.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
        mut load_w: impl FnMut(&mut melreq_snap::Dec<'_>) -> Result<W, melreq_snap::SnapError>,
    ) -> Result<(), melreq_snap::SnapError> {
        let n = dec.usize()?;
        if n > self.capacity {
            return Err(melreq_snap::SnapError::Invalid("MSHR entries exceed capacity"));
        }
        self.entries.clear();
        for _ in 0..n {
            let line = dec.u64()?;
            let wn = dec.usize()?;
            let mut waiters = Vec::with_capacity(wn);
            for _ in 0..wn {
                waiters.push(load_w(dec)?);
            }
            self.entries.push(Entry { line, waiters });
        }
        self.merges.load_state(dec)
    }

    /// Complete the miss for `addr`'s line, returning all merged waiters.
    ///
    /// # Panics
    /// Panics if the line has no outstanding entry — a completion for a
    /// line nobody asked for indicates a plumbing bug.
    pub fn complete(&mut self, addr: Addr) -> Vec<W> {
        let line = line_addr(addr);
        let pos = self
            .entries
            .iter()
            .position(|e| e.line == line)
            .unwrap_or_else(|| panic!("MSHR completion for untracked line {line:#x}"));
        self.entries.swap_remove(pos).waiters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merge() {
        let mut m: MshrFile<u32> = MshrFile::new(2);
        assert_eq!(m.allocate(0x1000, 1), AllocOutcome::Primary);
        assert_eq!(m.allocate(0x1020, 2), AllocOutcome::Merged); // same line
        assert_eq!(m.len(), 1);
        assert_eq!(m.merges.get(), 1);
        let w = m.complete(0x1000);
        assert_eq!(w, vec![1, 2]);
        assert!(m.is_empty());
    }

    #[test]
    fn full_rejects_new_lines_but_merges_existing() {
        let mut m: MshrFile<u32> = MshrFile::new(1);
        assert_eq!(m.allocate(0x0000, 1), AllocOutcome::Primary);
        assert!(m.is_full());
        assert_eq!(m.allocate(0x2000, 2), AllocOutcome::Full);
        assert_eq!(m.allocate(0x0040, 3), AllocOutcome::Full); // different line
        assert_eq!(m.allocate(0x0000, 4), AllocOutcome::Merged);
    }

    #[test]
    fn contains_uses_line_granularity() {
        let mut m: MshrFile<()> = MshrFile::new(4);
        m.allocate(0x1234, ());
        assert!(m.contains(0x1200));
        assert!(m.contains(0x123f));
        assert!(!m.contains(0x1240));
    }

    #[test]
    #[should_panic(expected = "untracked line")]
    fn completing_unknown_line_panics() {
        let mut m: MshrFile<()> = MshrFile::new(1);
        m.complete(0x4000);
    }

    #[test]
    fn independent_lines_each_take_an_entry() {
        let mut m: MshrFile<u32> = MshrFile::new(3);
        for i in 0..3 {
            assert_eq!(m.allocate(i * 0x40, i as u32), AllocOutcome::Primary);
        }
        assert!(m.is_full());
        assert_eq!(m.complete(0x40), vec![1]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.allocate(0x1000, 9), AllocOutcome::Primary);
    }
}
