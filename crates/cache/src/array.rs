//! The tag/state array of one set-associative cache.

use crate::config::CacheConfig;
use melreq_stats::types::{Addr, CACHE_LINE_SHIFT};
use melreq_stats::Counter;

/// A victim line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line-aligned address of the victim.
    pub line_addr: Addr,
    /// Whether the victim was dirty (must be written back).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp: larger = more recently used.
    lru: u64,
}

const INVALID: Way = Way { tag: 0, valid: false, dirty: false, lru: 0 };

/// Per-cache statistics.
#[derive(Debug, Default, Clone)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: Counter,
    /// Demand misses (excluding MSHR merges, which the hierarchy counts).
    pub misses: Counter,
    /// Dirty victims produced by fills.
    pub writebacks: Counter,
}

impl CacheStats {
    /// Hit rate over demand accesses.
    pub fn hit_rate(&self) -> f64 {
        self.hits.ratio_of(self.hits.get() + self.misses.get())
    }
}

/// Tag array + true-LRU replacement + dirty bits.
///
/// Purely structural: it does not know about latencies or lower levels.
/// All addresses may be un-aligned; the array masks to lines internally.
#[derive(Debug, Clone)]
pub struct CacheArray {
    cfg: CacheConfig, // melreq-allow(S01): construction-time config, identical across snapshot peers
    sets: Vec<Way>,
    set_mask: u64, // melreq-allow(S01): derived from cfg at construction, never mutated
    stamp: u64,
    stats: CacheStats,
}

impl CacheArray {
    /// An empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.sets();
        CacheArray {
            cfg,
            sets: vec![INVALID; sets * cfg.ways],
            set_mask: sets as u64 - 1,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr >> CACHE_LINE_SHIFT;
        ((line & self.set_mask) as usize, line >> self.set_mask.count_ones())
    }

    #[inline]
    fn ways_of(&mut self, set: usize) -> &mut [Way] {
        let w = self.cfg.ways;
        &mut self.sets[set * w..(set + 1) * w]
    }

    /// Demand access. On a hit, updates LRU (and the dirty bit when
    /// `write`) and returns `true`. On a miss returns `false` without
    /// allocating — allocation happens at fill time (the miss goes
    /// through the MSHRs first).
    pub fn access(&mut self, addr: Addr, write: bool) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let (set, tag) = self.set_and_tag(addr);
        for way in self.ways_of(set) {
            if way.valid && way.tag == tag {
                way.lru = stamp;
                if write {
                    way.dirty = true;
                }
                self.stats.hits.inc();
                return true;
            }
        }
        self.stats.misses.inc();
        false
    }

    /// Tag probe without LRU/stat side effects.
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let w = self.cfg.ways;
        self.sets[set * w..(set + 1) * w].iter().any(|way| way.valid && way.tag == tag)
    }

    /// Install a line (from a fill or a write-back from an upper level).
    /// Evicts the LRU way if the set is full and returns the victim.
    /// Filling an already-present line refreshes LRU and ORs the dirty
    /// bit instead of evicting.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<Evicted> {
        self.stamp += 1;
        let stamp = self.stamp;
        let (set, tag) = self.set_and_tag(addr);
        let set_bits = self.set_mask.count_ones();
        // Already present (e.g. a second fill racing a write-back)?
        for way in self.ways_of(set) {
            if way.valid && way.tag == tag {
                way.lru = stamp;
                way.dirty |= dirty;
                return None;
            }
        }
        // Free way?
        if let Some(way) = self.ways_of(set).iter_mut().find(|w| !w.valid) {
            *way = Way { tag, valid: true, dirty, lru: stamp };
            return None;
        }
        // Evict true-LRU.
        let victim = self.ways_of(set).iter_mut().min_by_key(|w| w.lru).expect("set has ways");
        let evicted = Evicted {
            line_addr: ((victim.tag << set_bits) | set as u64) << CACHE_LINE_SHIFT,
            dirty: victim.dirty,
        };
        *victim = Way { tag, valid: true, dirty, lru: stamp };
        if evicted.dirty {
            self.stats.writebacks.inc();
        }
        Some(evicted)
    }

    /// Drop a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: Addr) -> Option<bool> {
        let (set, tag) = self.set_and_tag(addr);
        for way in self.ways_of(set) {
            if way.valid && way.tag == tag {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Number of valid lines (test/diagnostic helper).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }

    /// Serialize every way, the LRU stamp and the statistics.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.sets.len());
        for way in &self.sets {
            enc.u64(way.tag);
            enc.bool(way.valid);
            enc.bool(way.dirty);
            enc.u64(way.lru);
        }
        enc.u64(self.stamp);
        self.stats.hits.save_state(enc);
        self.stats.misses.save_state(enc);
        self.stats.writebacks.save_state(enc);
    }

    /// Restore state written by [`CacheArray::save_state`] into an array
    /// with the same geometry.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        let n = dec.usize()?;
        if n != self.sets.len() {
            return Err(melreq_snap::SnapError::Invalid("cache geometry mismatch"));
        }
        for way in &mut self.sets {
            way.tag = dec.u64()?;
            way.valid = dec.bool()?;
            way.dirty = dec.bool()?;
            way.lru = dec.u64()?;
        }
        self.stamp = dec.u64()?;
        self.stats.hits.load_state(dec)?;
        self.stats.misses.load_state(dec)?;
        self.stats.writebacks.load_state(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 4 sets x 2 ways x 64 B = 512 B.
        CacheArray::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false));
        assert_eq!(c.fill(0x1000, false), None);
        assert!(c.access(0x1000, false));
        assert!(c.probe(0x1000));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = tiny();
        c.fill(0x1000, false);
        assert!(c.access(0x103f, false));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets*line = 256).
        c.fill(0x000, false);
        c.fill(0x100, false);
        // Touch 0x000 so 0x100 is LRU.
        assert!(c.access(0x000, false));
        let ev = c.fill(0x200, false).expect("must evict");
        assert_eq!(ev.line_addr, 0x100);
        assert!(!ev.dirty);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = tiny();
        c.fill(0x000, false);
        assert!(c.access(0x000, true)); // dirty it
        c.fill(0x100, false);
        let ev = c.fill(0x200, false).expect("evict");
        // LRU is 0x000 despite being written first? No: access updated its
        // LRU, so the victim is 0x100... verify by checking dirty flag of
        // whichever was evicted.
        if ev.line_addr == 0x000 {
            assert!(ev.dirty);
        } else {
            assert_eq!(ev.line_addr, 0x100);
            assert!(!ev.dirty);
            // Next eviction takes the dirty line.
            let ev2 = c.fill(0x300, false).expect("evict");
            assert_eq!(ev2.line_addr, 0x000);
            assert!(ev2.dirty);
        }
    }

    #[test]
    fn fill_existing_line_merges_dirty() {
        let mut c = tiny();
        c.fill(0x000, false);
        assert_eq!(c.fill(0x000, true), None);
        c.fill(0x100, false);
        let ev = c.fill(0x200, false).expect("evict");
        assert_eq!(ev.line_addr, 0x000);
        assert!(ev.dirty, "merged dirty bit lost");
    }

    #[test]
    fn victim_address_reconstruction() {
        let mut c = tiny();
        for i in 0..3 {
            // Set 2 lines: offset 2*64 within each 256-byte stripe.
            let addr = 0x80 + i * 0x100;
            c.fill(addr, false);
        }
        // First fill got evicted; its reconstructed address must be exact.
        assert!(!c.probe(0x80));
        assert!(c.probe(0x180));
        assert!(c.probe(0x280));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.fill(0x000, false);
        c.access(0x000, true);
        assert_eq!(c.invalidate(0x000), Some(true));
        assert_eq!(c.invalidate(0x000), None);
        assert!(!c.probe(0x000));
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.fill(0x000, false);
        c.fill(0x040, false);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn write_hits_set_dirty() {
        let mut c = tiny();
        c.fill(0x000, false);
        c.access(0x000, true);
        assert_eq!(c.invalidate(0x000), Some(true));
    }
}
