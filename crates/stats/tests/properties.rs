//! Property-based tests of the statistics substrate.

use melreq_stats::fixedpoint::{auto_scale, quantize};
use melreq_stats::{smt_speedup, unfairness, Histogram, LatencyTracker, StreamingMean};
use proptest::prelude::*;

proptest! {
    /// Histogram conserves the sample count and its mean is exact.
    #[test]
    fn histogram_conserves_count_and_mean(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), samples.len() as u64);
        let expect = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((h.mean().unwrap() - expect).abs() < 1e-6);
    }

    /// LatencyTracker's mean always lies between its min and max.
    #[test]
    fn latency_mean_within_extremes(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut t = LatencyTracker::new();
        for &s in &samples {
            t.record(s);
        }
        let mean = t.mean().unwrap();
        prop_assert!(mean >= t.min().unwrap() - 1e-9);
        prop_assert!(mean <= t.max().unwrap() + 1e-9);
    }

    /// Merging trackers equals tracking the concatenation.
    #[test]
    fn tracker_merge_equals_concat(
        a in proptest::collection::vec(0u64..100_000, 1..100),
        b in proptest::collection::vec(0u64..100_000, 1..100)
    ) {
        let mut ta = LatencyTracker::new();
        let mut tb = LatencyTracker::new();
        let mut tall = LatencyTracker::new();
        for &s in &a { ta.record(s); tall.record(s); }
        for &s in &b { tb.record(s); tall.record(s); }
        ta.merge(&tb);
        prop_assert_eq!(ta.count(), tall.count());
        prop_assert!((ta.mean().unwrap() - tall.mean().unwrap()).abs() < 1e-9);
        prop_assert_eq!(ta.min(), tall.min());
        prop_assert_eq!(ta.max(), tall.max());
    }

    /// Quantization is monotone and saturating.
    #[test]
    fn quantize_monotone(a in 0.0f64..1e6, b in 0.0f64..1e6, scale in 0.001f64..1e3) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize(lo, scale) <= quantize(hi, scale));
    }

    /// Auto-scale maps the maximum finite input to the top of the range.
    #[test]
    fn auto_scale_saturates_max(values in proptest::collection::vec(0.001f64..1e6, 1..20)) {
        let s = auto_scale(values.iter().copied());
        let max = values.iter().copied().fold(0.0, f64::max);
        prop_assert_eq!(quantize(max, s).raw(), 1023);
    }

    /// SMT speedup of identical multi/single IPCs equals the core count,
    /// and unfairness is then exactly 1.
    #[test]
    fn no_interference_metrics(ipc in proptest::collection::vec(0.01f64..4.0, 1..16)) {
        let s = smt_speedup(&ipc, &ipc);
        prop_assert!((s - ipc.len() as f64).abs() < 1e-9);
        prop_assert!((unfairness(&ipc, &ipc) - 1.0).abs() < 1e-9);
    }

    /// Unfairness is invariant under uniform scaling of the multi-core
    /// IPCs (it is a ratio of slowdowns).
    #[test]
    fn unfairness_scale_invariant(
        ipc in proptest::collection::vec(0.01f64..4.0, 2..8),
        k in 0.1f64..2.0
    ) {
        let single = vec![1.0; ipc.len()];
        let scaled: Vec<f64> = ipc.iter().map(|v| v * k).collect();
        let u1 = unfairness(&ipc, &single);
        let u2 = unfairness(&scaled, &single);
        prop_assert!((u1 - u2).abs() < 1e-9 * u1.max(1.0));
    }

    /// StreamingMean matches a direct computation.
    #[test]
    fn streaming_mean_exact(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut m = StreamingMean::new();
        for &s in &samples {
            m.push(s);
        }
        let expect = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((m.mean().unwrap() - expect).abs() < 1e-6);
    }
}
