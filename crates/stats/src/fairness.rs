//! The paper's two system-level evaluation metrics.
//!
//! * **SMT speedup** (Section 4.1, from Snavely & Tullsen): the sum over
//!   cores of `IPC_multi[i] / IPC_single[i]`. A value of `n` would mean no
//!   interference at all on an `n`-core system.
//! * **Unfairness** (Section 5.3, following Gabor et al. and Mutlu &
//!   Moscibroda): the ratio of the maximum per-program slowdown to the
//!   minimum per-program slowdown, where slowdown is
//!   `IPC_single[i] / IPC_multi[i]`. 1.0 is perfectly fair; larger is
//!   less fair.

/// SMT speedup: `Σ IPC_multi[i] / IPC_single[i]`.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or any single-core
/// IPC is non-positive (a program cannot have zero standalone IPC).
pub fn smt_speedup(ipc_multi: &[f64], ipc_single: &[f64]) -> f64 {
    assert_eq!(ipc_multi.len(), ipc_single.len(), "per-core IPC slices must align");
    assert!(!ipc_multi.is_empty(), "need at least one core");
    ipc_multi
        .iter()
        .zip(ipc_single)
        .map(|(&m, &s)| {
            assert!(s > 0.0, "single-core IPC must be positive");
            assert!(m >= 0.0, "multi-core IPC cannot be negative");
            m / s
        })
        .sum()
}

/// Per-program slowdowns: `IPC_single[i] / IPC_multi[i]`.
///
/// A program that made no progress at all (`IPC_multi == 0`) is reported
/// as `f64::INFINITY` slowdown — a starved core, which the unfairness
/// metric will surface as infinite unfairness.
pub fn slowdowns(ipc_multi: &[f64], ipc_single: &[f64]) -> Vec<f64> {
    assert_eq!(ipc_multi.len(), ipc_single.len(), "per-core IPC slices must align");
    ipc_multi
        .iter()
        .zip(ipc_single)
        .map(|(&m, &s)| {
            assert!(s > 0.0, "single-core IPC must be positive");
            if m <= 0.0 {
                f64::INFINITY
            } else {
                s / m
            }
        })
        .collect()
}

/// Unfairness: `max(slowdown) / min(slowdown)`; 1.0 is perfectly fair.
pub fn unfairness(ipc_multi: &[f64], ipc_single: &[f64]) -> f64 {
    let sd = slowdowns(ipc_multi, ipc_single);
    let max = sd.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = sd.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(min > 0.0, "slowdown cannot be non-positive");
    max / min
}

/// Harmonic mean of per-program speedups: `n / Σ slowdown[i]`
/// (Luo et al.) — balances throughput and fairness in one number.
///
/// A starved core (infinite slowdown) yields 0.0.
pub fn harmonic_speedup(ipc_multi: &[f64], ipc_single: &[f64]) -> f64 {
    let sd = slowdowns(ipc_multi, ipc_single);
    let total: f64 = sd.iter().sum();
    if total.is_infinite() {
        0.0
    } else {
        sd.len() as f64 / total
    }
}

/// The largest per-program slowdown — the worst-treated core's factor.
/// `f64::INFINITY` when some core starved entirely.
pub fn max_slowdown(ipc_multi: &[f64], ipc_single: &[f64]) -> f64 {
    slowdowns(ipc_multi, ipc_single).into_iter().fold(f64::NEG_INFINITY, f64::max)
}

/// A bundle of the fairness metrics plus the raw slowdowns, for reports.
#[derive(Debug, Clone)]
pub struct FairnessReport {
    /// SMT speedup (higher is better; ideal = number of cores).
    pub smt_speedup: f64,
    /// Weighted speedup: `Σ IPC_multi[i] / IPC_single[i]` — the same sum
    /// as SMT speedup, reported under its scheduling-literature name so
    /// cross-paper comparisons read naturally.
    pub weighted_speedup: f64,
    /// Harmonic mean of speedups (higher is better; ideal = 1.0).
    pub harmonic_speedup: f64,
    /// Unfairness ratio (lower is better; ideal = 1.0).
    pub unfairness: f64,
    /// Largest per-core slowdown (lower is better; ideal = 1.0).
    pub max_slowdown: f64,
    /// Per-core slowdown factors.
    pub slowdowns: Vec<f64>,
}

impl FairnessReport {
    /// Compute every metric from per-core multi-core and single-core IPCs.
    pub fn compute(ipc_multi: &[f64], ipc_single: &[f64]) -> Self {
        let speedup = smt_speedup(ipc_multi, ipc_single);
        FairnessReport {
            smt_speedup: speedup,
            weighted_speedup: speedup,
            harmonic_speedup: harmonic_speedup(ipc_multi, ipc_single),
            unfairness: unfairness(ipc_multi, ipc_single),
            max_slowdown: max_slowdown(ipc_multi, ipc_single),
            slowdowns: slowdowns(ipc_multi, ipc_single),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interference_gives_n() {
        let single = [1.0, 2.0, 0.5, 1.5];
        let speedup = smt_speedup(&single, &single);
        assert!((speedup - 4.0).abs() < 1e-12);
        assert!((unfairness(&single, &single) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_weighted_not_raw() {
        // Core 0 halves, core 1 unchanged: speedup = 0.5 + 1.0.
        let multi = [0.5, 2.0];
        let single = [1.0, 2.0];
        assert!((smt_speedup(&multi, &single) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unfairness_ratio() {
        // Slowdowns 2.0 and 1.25 -> unfairness 1.6.
        let multi = [0.5, 0.8];
        let single = [1.0, 1.0];
        assert!((unfairness(&multi, &single) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn starved_core_is_infinitely_unfair() {
        let multi = [0.0, 1.0];
        let single = [1.0, 1.0];
        assert!(unfairness(&multi, &single).is_infinite());
    }

    #[test]
    fn report_bundles_metrics() {
        let r = FairnessReport::compute(&[0.5, 1.0], &[1.0, 1.0]);
        assert_eq!(r.slowdowns.len(), 2);
        assert!((r.smt_speedup - 1.5).abs() < 1e-12);
        assert!((r.weighted_speedup - 1.5).abs() < 1e-12);
        assert!((r.unfairness - 2.0).abs() < 1e-12);
        // Slowdowns 2.0 and 1.0: harmonic speedup = 2 / 3, max slowdown 2.0.
        assert!((r.harmonic_speedup - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.max_slowdown - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_speedup_handles_starvation() {
        assert_eq!(harmonic_speedup(&[0.0, 1.0], &[1.0, 1.0]), 0.0);
        assert!((harmonic_speedup(&[1.0, 1.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(max_slowdown(&[0.0, 1.0], &[1.0, 1.0]).is_infinite());
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = smt_speedup(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "single-core IPC must be positive")]
    fn zero_single_ipc_panics() {
        let _ = smt_speedup(&[1.0], &[0.0]);
    }
}
