//! Combined latency statistics: exact mean/min/max plus a log₂ histogram.

use crate::histogram::Histogram;
use crate::mean::{StreamingMean, StreamingMinMax};
use crate::types::Cycle;

/// Tracks the latency distribution of a class of events (e.g. memory read
/// requests from one core, as plotted in Figure 4 of the paper).
///
/// Records exact count/mean/min/max and an approximate distribution.
#[derive(Debug, Default, Clone)]
pub struct LatencyTracker {
    mean: StreamingMean,
    minmax: StreamingMinMax,
    histogram: Histogram,
}

impl LatencyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the latency of one completed event.
    ///
    /// `start` must not exceed `end`; in debug builds this is asserted.
    #[inline]
    pub fn record_span(&mut self, start: Cycle, end: Cycle) {
        debug_assert!(end >= start, "event completed before it started");
        self.record(end.saturating_sub(start));
    }

    /// Record a latency value directly.
    #[inline]
    pub fn record(&mut self, latency: Cycle) {
        self.mean.push(latency as f64);
        self.minmax.push(latency as f64);
        self.histogram.record(latency);
    }

    /// Number of events recorded.
    pub fn count(&self) -> u64 {
        self.mean.count()
    }

    /// Mean latency in cycles, or `None` if no events were recorded.
    pub fn mean(&self) -> Option<f64> {
        self.mean.mean()
    }

    /// Mean latency, 0.0 when empty (for report tables).
    pub fn mean_or_zero(&self) -> f64 {
        self.mean.mean_or_zero()
    }

    /// Minimum latency seen.
    pub fn min(&self) -> Option<f64> {
        self.minmax.min()
    }

    /// Maximum latency seen.
    pub fn max(&self) -> Option<f64> {
        self.minmax.max()
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Serialize into a checkpoint.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        self.mean.save_state(enc);
        self.minmax.save_state(enc);
        self.histogram.save_state(enc);
    }

    /// Restore from a checkpoint.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        self.mean.load_state(dec)?;
        self.minmax.load_state(dec)?;
        self.histogram.load_state(dec)
    }

    /// Merge another tracker into this one.
    pub fn merge(&mut self, other: &LatencyTracker) {
        self.mean.merge(&other.mean);
        if let Some(m) = other.minmax.min() {
            self.minmax.push(m);
        }
        if let Some(m) = other.minmax.max() {
            self.minmax.push(m);
        }
        self.histogram.merge(&other.histogram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker() {
        let t = LatencyTracker::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean(), None);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn record_span_computes_difference() {
        let mut t = LatencyTracker::new();
        t.record_span(100, 150);
        t.record_span(200, 350);
        assert_eq!(t.count(), 2);
        assert!((t.mean().unwrap() - 100.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(50.0));
        assert_eq!(t.max(), Some(150.0));
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyTracker::new();
        let mut b = LatencyTracker::new();
        a.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean().unwrap() - 20.0).abs() < 1e-12);
        assert_eq!(a.min(), Some(10.0));
        assert_eq!(a.max(), Some(30.0));
    }

    #[test]
    fn histogram_is_populated() {
        let mut t = LatencyTracker::new();
        t.record(100);
        assert_eq!(t.histogram().count(), 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "completed before it started")]
    fn record_span_rejects_backwards_time() {
        let mut t = LatencyTracker::new();
        t.record_span(10, 5);
    }
}
