//! Foundational types and statistics for the `melreq` simulator.
//!
//! This crate is the bottom of the `melreq` dependency graph. It defines:
//!
//! * the primitive simulation types shared by every other crate —
//!   [`Cycle`], [`Addr`], [`CoreId`], [`AccessKind`];
//! * streaming statistics used to report the paper's metrics without
//!   retaining per-event data — [`Counter`], [`StreamingMean`],
//!   [`LatencyTracker`], [`Histogram`];
//! * the paper's evaluation metrics — [`fairness::smt_speedup`] (Snavely &
//!   Tullsen weighted speedup, Section 4.1) and [`fairness::unfairness`]
//!   (max-slowdown / min-slowdown ratio, Section 5.3);
//! * [`fixedpoint`] quantization helpers used by the hardware priority
//!   table of Figure 1 (10-bit entries).
//!
//! All statistics are plain-old-data with `O(1)` update cost so they can be
//! embedded in the cycle loop of a cycle-level simulator without perturbing
//! its performance characteristics.

pub mod bandwidth;
pub mod counter;
pub mod fairness;
pub mod fixedpoint;
pub mod histogram;
pub mod latency;
pub mod mean;
pub mod types;

pub use bandwidth::BandwidthMeter;
pub use counter::Counter;
pub use fairness::{smt_speedup, unfairness, FairnessReport};
pub use fixedpoint::PriorityFixed;
pub use histogram::Histogram;
pub use latency::LatencyTracker;
pub use mean::{StreamingMean, StreamingMinMax};
pub use types::{
    line_addr, line_index, AccessKind, Addr, CoreId, Cycle, CACHE_LINE_BYTES, CACHE_LINE_SHIFT,
};
