//! Simple event counters.

/// A monotonically increasing event counter.
///
/// Wraps a `u64` with a small API so call sites read as instrumentation
/// (`stats.row_hits.inc()`) rather than arithmetic, and so a counter can be
/// rendered uniformly in reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter { value: 0 }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Reset to zero (used when statistics gathering starts after warm-up).
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Serialize into a checkpoint.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.u64(self.value);
    }

    /// Restore from a checkpoint.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        self.value = dec.u64()?;
        Ok(())
    }

    /// This counter as a fraction of `denom` (0.0 when `denom` is zero).
    ///
    /// Convenience for hit-rate style reporting.
    pub fn ratio_of(&self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.value as f64 / denom as f64
        }
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value)
    }
}

impl std::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.add(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Counter::new().get(), 0);
        assert_eq!(Counter::default().get(), 0);
    }

    #[test]
    fn inc_and_add() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        c += 5;
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = Counter::new();
        c.add(42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_of_handles_zero_denominator() {
        let mut c = Counter::new();
        c.add(3);
        assert_eq!(c.ratio_of(0), 0.0);
        assert!((c.ratio_of(6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_renders_value() {
        let mut c = Counter::new();
        c.add(7);
        assert_eq!(c.to_string(), "7");
    }
}
