//! Fixed-point quantization for the hardware priority table of Figure 1.
//!
//! The ME-LREQ controller cannot compute `ME[i] / PendingRead[i]` with a
//! divider at scheduling time; instead the OS precomputes the quotient for
//! every possible pending-read count (1..=64) and stores it, *scaled and
//! rounded to a 10-bit integer*, in a per-core table (Section 3.2: "each
//! table entry stores a 10-bit priority information").
//!
//! [`PriorityFixed`] is that 10-bit value. The quantization is shared by
//! the controller model and its tests so both agree bit-for-bit.

/// Number of bits in a priority-table entry (from Section 3.2).
pub const PRIORITY_BITS: u32 = 10;

/// Largest representable priority value (`2^10 - 1 = 1023`).
pub const PRIORITY_MAX: u16 = (1 << PRIORITY_BITS) - 1;

/// A 10-bit fixed-point priority value as stored in the hardware table.
///
/// Ordering follows the numeric value: larger means higher scheduling
/// priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PriorityFixed(u16);

impl PriorityFixed {
    /// The zero (lowest) priority.
    pub const ZERO: PriorityFixed = PriorityFixed(0);

    /// The saturated maximum priority.
    pub const MAX: PriorityFixed = PriorityFixed(PRIORITY_MAX);

    /// Construct from a raw table value, saturating to 10 bits.
    pub fn from_raw(v: u16) -> Self {
        PriorityFixed(v.min(PRIORITY_MAX))
    }

    /// The raw 10-bit value.
    pub fn raw(self) -> u16 {
        self.0
    }
}

/// Quantize a real-valued priority into the 10-bit table representation.
///
/// `scale` maps the real value onto the table range; values at or above
/// `PRIORITY_MAX / scale` saturate. Non-finite or negative inputs map to
/// zero (they can only arise from degenerate profiles and must not panic
/// inside the controller).
pub fn quantize(value: f64, scale: f64) -> PriorityFixed {
    if !value.is_finite() {
        // Infinite ME (a program with zero bandwidth) saturates: such a
        // program's rare requests should win immediately.
        return if value > 0.0 { PriorityFixed::MAX } else { PriorityFixed::ZERO };
    }
    if value <= 0.0 || scale <= 0.0 {
        return PriorityFixed::ZERO;
    }
    let scaled = (value * scale).round();
    if scaled >= PRIORITY_MAX as f64 {
        PriorityFixed::MAX
    } else {
        PriorityFixed(scaled as u16)
    }
}

/// Choose a table scale so that the largest finite priority in `values`
/// lands near the top of the 10-bit range, maximizing resolution.
///
/// Returns 1.0 for an empty or all-zero input.
pub fn auto_scale(values: impl IntoIterator<Item = f64>) -> f64 {
    let max = values.into_iter().filter(|v| v.is_finite()).fold(0.0f64, f64::max);
    if max <= 0.0 {
        1.0
    } else {
        PRIORITY_MAX as f64 / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip_and_saturation() {
        assert_eq!(PriorityFixed::from_raw(5).raw(), 5);
        assert_eq!(PriorityFixed::from_raw(5000).raw(), PRIORITY_MAX);
    }

    #[test]
    fn quantize_scales_and_rounds() {
        let p = quantize(2.4, 10.0);
        assert_eq!(p.raw(), 24);
        let p = quantize(2.46, 10.0);
        assert_eq!(p.raw(), 25);
    }

    #[test]
    fn quantize_saturates() {
        assert_eq!(quantize(1e9, 1.0), PriorityFixed::MAX);
        assert_eq!(quantize(f64::INFINITY, 1.0), PriorityFixed::MAX);
    }

    #[test]
    fn quantize_degenerate_inputs_are_zero() {
        assert_eq!(quantize(-1.0, 10.0), PriorityFixed::ZERO);
        assert_eq!(quantize(f64::NAN, 10.0), PriorityFixed::ZERO);
        assert_eq!(quantize(1.0, 0.0), PriorityFixed::ZERO);
    }

    #[test]
    fn auto_scale_targets_top_of_range() {
        let s = auto_scale([1.0, 10.0, 100.0]);
        assert_eq!(quantize(100.0, s), PriorityFixed::MAX);
        assert!(quantize(1.0, s).raw() >= 10);
    }

    #[test]
    fn auto_scale_empty_is_one() {
        assert_eq!(auto_scale(std::iter::empty()), 1.0);
        assert_eq!(auto_scale([0.0]), 1.0);
    }

    #[test]
    fn ordering_follows_value() {
        assert!(quantize(2.0, 10.0) > quantize(1.0, 10.0));
    }
}
