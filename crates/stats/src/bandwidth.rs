//! Memory bandwidth accounting.
//!
//! The paper's memory-efficiency metric (Equation 1) divides IPC by the
//! program's bandwidth usage *in GB/s*, so bandwidth must be reported in
//! wall-clock units. The simulator runs in CPU cycles; [`BandwidthMeter`]
//! converts cycle counts to seconds using the configured core frequency.

use crate::types::Cycle;

/// Accumulates bytes transferred and converts to GB/s at a given core clock.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthMeter {
    bytes: u64,
    /// Core clock frequency in Hz (3.2 GHz in the paper's configuration).
    freq_hz: f64,
}

impl BandwidthMeter {
    /// A meter for a machine whose cycle counter ticks at `freq_hz`.
    pub fn new(freq_hz: f64) -> Self {
        assert!(freq_hz > 0.0, "frequency must be positive");
        BandwidthMeter { bytes: 0, freq_hz }
    }

    /// Record `n` bytes moved across the measured interface.
    #[inline]
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Average bandwidth over `elapsed` cycles, in bytes per second.
    /// Returns 0.0 for an empty interval.
    pub fn bytes_per_second(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let seconds = elapsed as f64 / self.freq_hz;
        self.bytes as f64 / seconds
    }

    /// Average bandwidth over `elapsed` cycles, in GB/s (10⁹ bytes per
    /// second, the unit of Equation 1).
    pub fn gb_per_second(&self, elapsed: Cycle) -> f64 {
        self.bytes_per_second(elapsed) / 1e9
    }

    /// Reset the byte count (e.g. at the end of warm-up).
    pub fn reset(&mut self) {
        self.bytes = 0;
    }
}

/// Compute the paper's memory-efficiency metric (Equation 1):
/// `ME = IPC_single / BW_single`, with bandwidth in GB/s.
///
/// Programs that touch essentially no memory have unboundedly large ME;
/// the paper caps nothing, reporting e.g. 16276 for `eon`. We saturate at
/// `f64::MAX / 2` to keep downstream arithmetic finite, and define the
/// ME of a zero-bandwidth program as that saturated maximum.
pub fn memory_efficiency(ipc: f64, bw_gbs: f64) -> f64 {
    assert!(ipc >= 0.0 && bw_gbs >= 0.0, "negative inputs to memory_efficiency");
    if bw_gbs <= f64::EPSILON {
        return f64::MAX / 2.0;
    }
    (ipc / bw_gbs).min(f64::MAX / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_interval_is_zero_bandwidth() {
        let m = BandwidthMeter::new(3.2e9);
        assert_eq!(m.bytes_per_second(0), 0.0);
    }

    #[test]
    fn converts_cycles_to_seconds() {
        let mut m = BandwidthMeter::new(3.2e9);
        // 12.8 GB/s for one second = 12.8e9 bytes over 3.2e9 cycles.
        m.add_bytes(12_800_000_000);
        let gbs = m.gb_per_second(3_200_000_000);
        assert!((gbs - 12.8).abs() < 1e-9, "got {gbs}");
    }

    #[test]
    fn reset_zeroes_bytes() {
        let mut m = BandwidthMeter::new(1e9);
        m.add_bytes(100);
        m.reset();
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn memory_efficiency_matches_equation_one() {
        // gzip-like: IPC 1.5 at 0.0078 GB/s -> ME ~192.
        let me = memory_efficiency(1.5, 0.0078125);
        assert!((me - 192.0).abs() < 1.0, "got {me}");
    }

    #[test]
    fn zero_bandwidth_saturates() {
        let me = memory_efficiency(2.0, 0.0);
        assert!(me.is_finite());
        assert!(me > 1e100);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn rejects_nonpositive_frequency() {
        let _ = BandwidthMeter::new(0.0);
    }
}
