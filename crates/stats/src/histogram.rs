//! Power-of-two bucketed histogram for latency distributions.

/// A histogram with logarithmic (power-of-two) buckets.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`, with bucket 0 counting
/// samples of 0 or 1. The last bucket is an overflow bucket. This gives a
/// compact, allocation-free view of heavy-tailed latency distributions
/// (the per-core read-latency spread of Figure 4 spans 289–1042 cycles
/// within a single workload).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

/// Default number of power-of-two buckets: covers samples up to 2^31.
pub const DEFAULT_BUCKETS: usize = 32;

impl Histogram {
    /// A histogram with [`DEFAULT_BUCKETS`] power-of-two buckets.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// A histogram with `n` power-of-two buckets (`n >= 1`); samples of
    /// `2^(n-1)` and above land in the final bucket.
    pub fn with_buckets(n: usize) -> Self {
        assert!(n >= 1, "histogram needs at least one bucket");
        Histogram { buckets: vec![0; n], count: 0, sum: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        let b = (64 - sample.leading_zeros()) as usize; // 0 for sample 0
        let idx = b.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += sample as u128;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The raw bucket counts. Bucket `i` holds samples whose bit-length is
    /// `i` (i.e. value range `[2^(i-1), 2^i)` for `i >= 1`, and `{0}` for
    /// `i == 0`), except the last bucket which also holds all larger
    /// samples.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate quantile: returns the upper bound of the bucket in which
    /// the `q`-quantile sample falls (`0.0 <= q <= 1.0`). `None` if empty.
    ///
    /// Precision is a factor of two, which is sufficient for sanity checks
    /// and tail reporting; exact statistics use [`crate::LatencyTracker`].
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i >= 63 { u64::MAX } else { (1u64 << i).saturating_sub(1).max(1) });
            }
        }
        Some(u64::MAX)
    }

    /// Merge another histogram (must have the same bucket count).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "bucket count mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Serialize into a checkpoint.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.u64s(&self.buckets);
        enc.u64(self.count);
        enc.u128(self.sum);
    }

    /// Restore from a checkpoint. The bucket count must match this
    /// histogram's configuration (it is structural, not state).
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        let buckets = dec.u64s()?;
        if buckets.len() != self.buckets.len() {
            return Err(melreq_snap::SnapError::Invalid("histogram bucket count mismatch"));
        }
        self.buckets = buckets;
        self.count = dec.u64()?;
        self.sum = dec.u128()?;
        Ok(())
    }

    /// Reset all buckets.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn bucket_placement() {
        let mut h = Histogram::with_buckets(8);
        h.record(0); // bucket 0
        h.record(1); // bucket 1 (bit length 1)
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(4); // bucket 3
        h.record(1000); // overflow -> last bucket (7)
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[7], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn mean_matches_samples() {
        let mut h = Histogram::new();
        for s in [10u64, 20, 30] {
            h.record(s);
        }
        assert!((h.mean().unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_monotone() {
        let mut h = Histogram::new();
        for s in 0..1000u64 {
            h.record(s);
        }
        let q10 = h.quantile_upper_bound(0.1).unwrap();
        let q50 = h.quantile_upper_bound(0.5).unwrap();
        let q99 = h.quantile_upper_bound(0.99).unwrap();
        assert!(q10 <= q50 && q50 <= q99);
        assert!(q99 >= 512);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(12);
        h.reset();
        assert_eq!(h.count(), 0);
        assert!(h.buckets().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "bucket count mismatch")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = Histogram::with_buckets(4);
        let b = Histogram::with_buckets(8);
        a.merge(&b);
    }
}
