//! Primitive simulation types shared by every `melreq` crate.
//!
//! The whole simulator runs in a single clock domain: the CPU clock
//! (3.2 GHz in the paper's Table 1 configuration). DRAM timing parameters
//! are expressed in CPU cycles by the configuration layer, so a [`Cycle`]
//! is unambiguous everywhere.

/// A point in simulated time, measured in CPU cycles since reset.
pub type Cycle = u64;

/// A physical byte address.
pub type Addr = u64;

/// Cache lines are 64 bytes in every cache level and in the DRAM burst
/// length (Table 1 of the paper).
pub const CACHE_LINE_BYTES: u64 = 64;

/// `log2(CACHE_LINE_BYTES)`.
pub const CACHE_LINE_SHIFT: u32 = 6;

/// Identifies a processor core (and, under the paper's one-program-per-core
/// methodology, the program running on it).
///
/// A newtype rather than a bare `usize` so that core indices, bank indices
/// and queue indices cannot be accidentally interchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

impl CoreId {
    /// The core index as a `usize`, for indexing per-core state vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "core index out of range");
        CoreId(v as u16)
    }
}

/// Direction of a memory-system access.
///
/// Instruction fetches are reads; the distinction the scheduling policies
/// care about is read (processor-blocking) versus write (buffered), per
/// Section 2 of the paper ("read requests will cause the processor to
/// stall and write requests normally can be well handled by write
/// buffers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand read (data load miss, instruction fetch miss, or a line
    /// fetch triggered by a write-allocate store miss).
    Read,
    /// A write-back of a dirty line evicted from the last-level cache.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// Checked addition on cycle/timing values.
///
/// Cycle arithmetic in the DRAM timing path wraps silently in release
/// builds if it overflows; an overflowed `ready_at` horizon would quietly
/// reorder grants instead of crashing. This helper (and [`cyc_mul`]) make
/// overflow loud everywhere, matching the [`u64::checked_mul`] precedent in
/// `DramTiming::scaled`.
///
/// # Panics
/// Panics if `a + b` overflows [`Cycle`] — a simulated time that far past
/// `u64::MAX` is a caller bug, not a timing.
#[inline]
#[track_caller]
pub fn cyc_add(a: Cycle, b: Cycle) -> Cycle {
    a.checked_add(b).expect("cycle arithmetic overflows u64")
}

/// Checked multiplication on cycle/timing values; see [`cyc_add`].
///
/// # Panics
/// Panics if `a * b` overflows [`Cycle`].
#[inline]
#[track_caller]
pub fn cyc_mul(a: Cycle, b: Cycle) -> Cycle {
    a.checked_mul(b).expect("cycle arithmetic overflows u64")
}

/// Round `addr` down to the containing cache-line address.
#[inline]
pub fn line_addr(addr: Addr) -> Addr {
    addr & !(CACHE_LINE_BYTES - 1)
}

/// The cache-line index of `addr` (address divided by the line size).
#[inline]
pub fn line_index(addr: Addr) -> u64 {
    addr >> CACHE_LINE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_constants_consistent() {
        assert_eq!(1u64 << CACHE_LINE_SHIFT, CACHE_LINE_BYTES);
    }

    #[test]
    fn line_addr_masks_offset() {
        assert_eq!(line_addr(0), 0);
        assert_eq!(line_addr(63), 0);
        assert_eq!(line_addr(64), 64);
        assert_eq!(line_addr(0x12345), 0x12340);
    }

    #[test]
    fn line_index_is_shift() {
        assert_eq!(line_index(0), 0);
        assert_eq!(line_index(64), 1);
        assert_eq!(line_index(130), 2);
    }

    #[test]
    fn core_id_roundtrip() {
        let c: CoreId = 7usize.into();
        assert_eq!(c.index(), 7);
        assert_eq!(c.to_string(), "core7");
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }

    #[test]
    fn core_id_ordering_matches_index() {
        assert!(CoreId(0) < CoreId(1));
        assert!(CoreId(3) > CoreId(2));
    }

    #[test]
    fn cyc_helpers_compute() {
        assert_eq!(cyc_add(40, 16), 56);
        assert_eq!(cyc_mul(24_960, 3), 74_880);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn cyc_add_overflow_is_loud() {
        let _ = cyc_add(u64::MAX, 1);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn cyc_mul_overflow_is_loud() {
        let _ = cyc_mul(u64::MAX / 2, 3);
    }
}
