//! Streaming (single-pass, O(1)-memory) mean and min/max trackers.

/// Streaming arithmetic mean with count and sum.
///
/// Used for average read latency (Figure 4) and other per-run averages.
/// Sums are kept in `f64`; for the magnitudes this simulator produces
/// (≤ 2⁵³ total latency-cycles) the sum is exact.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamingMean {
    count: u64,
    sum: f64,
}

impl StreamingMean {
    /// An empty mean.
    pub const fn new() -> Self {
        StreamingMean { count: 0, sum: 0.0 }
    }

    /// Record one sample.
    #[inline]
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if no samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Arithmetic mean, or 0.0 if empty (for report tables).
    pub fn mean_or_zero(&self) -> f64 {
        self.mean().unwrap_or(0.0)
    }

    /// Merge another mean into this one (for cross-core aggregation).
    pub fn merge(&mut self, other: &StreamingMean) {
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Serialize into a checkpoint.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.u64(self.count);
        enc.f64(self.sum);
    }

    /// Restore from a checkpoint.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        self.count = dec.u64()?;
        self.sum = dec.f64()?;
        Ok(())
    }
}

/// Streaming minimum and maximum.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamingMinMax {
    min: Option<f64>,
    max: Option<f64>,
}

impl StreamingMinMax {
    /// An empty tracker.
    pub const fn new() -> Self {
        StreamingMinMax { min: None, max: None }
    }

    /// Record one sample.
    pub fn push(&mut self, sample: f64) {
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    /// Smallest sample seen, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample seen, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Serialize into a checkpoint.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.opt_f64(self.min);
        enc.opt_f64(self.max);
    }

    /// Restore from a checkpoint.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        self.min = dec.opt_f64()?;
        self.max = dec.opt_f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mean_is_none() {
        let m = StreamingMean::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.mean_or_zero(), 0.0);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn mean_of_samples() {
        let mut m = StreamingMean::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.push(x);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean().unwrap() - 2.5).abs() < 1e-12);
        assert!((m.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts_and_sums() {
        let mut a = StreamingMean::new();
        a.push(1.0);
        a.push(3.0);
        let mut b = StreamingMean::new();
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_tracks_extremes() {
        let mut mm = StreamingMinMax::new();
        assert_eq!(mm.min(), None);
        assert_eq!(mm.max(), None);
        for x in [3.0, -1.0, 7.5, 2.0] {
            mm.push(x);
        }
        assert_eq!(mm.min(), Some(-1.0));
        assert_eq!(mm.max(), Some(7.5));
    }

    #[test]
    fn minmax_single_sample() {
        let mut mm = StreamingMinMax::new();
        mm.push(4.0);
        assert_eq!(mm.min(), Some(4.0));
        assert_eq!(mm.max(), Some(4.0));
    }
}
