//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the API subset the workspace's benches use. It is a
//! functional micro-harness, not a statistics engine: each benchmark
//! runs a small fixed number of timed iterations and prints the mean
//! wall-clock time per iteration, so `cargo bench` still produces
//! usable relative numbers offline.

use std::time::Instant;

/// Iterations timed per benchmark (after one warm-up call).
const ITERS: u32 = 50;

/// An opaque barrier the optimizer must assume reads and writes `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How per-iteration setup outputs are batched in
/// [`Bencher::iter_batched`]. The stub runs one setup per iteration
/// regardless of the variant.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `routine` over the stub's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
    }

    /// Time `routine` with a fresh `setup` output per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = std::time::Duration::ZERO;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.nanos_per_iter = total.as_nanos() as f64 / f64::from(ITERS);
    }
}

fn report(name: &str, nanos: f64) {
    if nanos >= 1_000_000.0 {
        println!("{name:<50} {:>12.3} ms/iter", nanos / 1e6);
    } else if nanos >= 1_000.0 {
        println!("{name:<50} {:>12.3} µs/iter", nanos / 1e3);
    } else {
        println!("{name:<50} {nanos:>12.1} ns/iter");
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut (),
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), b.nanos_per_iter);
        self
    }

    /// End the group (no-op in the stub).
    pub fn finish(self) {}
}

/// The benchmark harness entry object.
#[derive(Debug, Default)]
pub struct Criterion {
    anchor: (),
}

impl Criterion {
    /// Run one top-level benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.into(), b.nanos_per_iter);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: &mut self.anchor }
    }
}

/// Collect benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= ITERS);
    }

    #[test]
    fn groups_and_batched_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut total = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |v| total += v, BatchSize::SmallInput);
        });
        group.finish();
        assert!(total >= u64::from(ITERS) * 2);
    }
}
