//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the subset of proptest's API the workspace's
//! property tests use: the [`proptest!`]/[`prop_assert!`]/
//! [`prop_assert_eq!`] macros, [`strategy::Strategy`] with `prop_map`,
//! range and tuple strategies, [`arbitrary::any`], and
//! [`collection::vec`]. Differences from the real crate:
//!
//! * cases are generated from a fixed seed, so runs are deterministic;
//! * there is **no shrinking** — a failing case reports the assertion
//!   message only;
//! * `.proptest-regressions` files are ignored.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Why a strategy could not produce a value (kept for API parity; the
    /// stub's strategies never fail).
    #[derive(Debug, Clone)]
    pub struct Reason(pub String);

    impl std::fmt::Display for Reason {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives value generation for one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        pub(crate) rng: SmallRng,
        pub(crate) config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner with the given configuration and the fixed seed.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { rng: SmallRng::seed_from_u64(0x9E37_79B9), config }
        }

        /// A deterministic runner (all stub runners are deterministic).
        pub fn deterministic() -> Self {
            Self::new(ProptestConfig::default())
        }

        /// The configured case count.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The runner's generator.
        pub fn rng(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use crate::test_runner::{Reason, TestRunner};

    /// A generated value plus (in real proptest) its shrink tree. The
    /// stub never shrinks: `current` just returns the generated value.
    pub trait ValueTree {
        /// The carried value type.
        type Value;

        /// The current (= originally generated) value.
        fn current(&self) -> Self::Value;
    }

    /// A leaf tree holding one cloneable value.
    #[derive(Debug, Clone)]
    pub struct Single<T: Clone>(pub T);

    impl<T: Clone> ValueTree for Single<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Clone;

        /// Generate one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Generate a (non-shrinking) value tree.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Single<Self::Value>, Reason> {
            Ok(Single(self.generate(runner)))
        }

        /// Map generated values through `f`.
        fn prop_map<O: Clone, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O: Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.source.generate(runner))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    use rand::Rng;
                    runner.rng().gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    use rand::Rng;
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::RngCore;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Clone {
        /// Draw one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.rng().next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.rng().next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// An inclusive-exclusive element-count window for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    /// A strategy generating vectors whose elements come from `element`
    /// and whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = runner.rng().gen_range(self.size.min..self.size.max_exclusive);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property body; on failure the failing
/// message propagates as an `Err` so the harness reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.cases;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            for case in 0..cases {
                let result: ::core::result::Result<(), String> = {
                    use $crate::strategy::Strategy as _;
                    $(let $pat = ($strat).generate(&mut runner);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::core::result::Result<(), String> {
                        $body
                        Ok(())
                    })()
                };
                if let Err(msg) = result {
                    panic!("property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, cases, msg);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(v in 10u64..20, w in 0u32..=3) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w <= 3);
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..4, any::<bool>()).prop_map(|(a, b)| (u32::from(a), b))) {
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn vectors_hit_requested_sizes(v in collection::vec(0u64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honoured(x in 0u64..1000) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn new_tree_and_current_work() {
        use crate::strategy::{Strategy, ValueTree};
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let v = (0u32..10).new_tree(&mut runner).expect("tree").current();
        assert!(v < 10);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        // Reuse the expansion manually so the should_panic test stays a
        // plain #[test].
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
