//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the API surface the workspace uses: the
//! [`Rng`] and [`SeedableRng`] traits, [`rngs::SmallRng`], integer and
//! float `gen_range`, and `gen_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 (the same construction the real
//! `SmallRng` uses on 64-bit targets), so streams are deterministic
//! and of respectable statistical quality.

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 raw bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range called with empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Map 64 raw bits to a uniform f64 in [0, 1).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be built from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to fill the state, as rand_xoshiro does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing. Restoring
        /// them with [`SmallRng::from_state`] resumes the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state captured by [`SmallRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility: the stub backs `StdRng` with the
    /// same engine as [`SmallRng`].
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = r.gen_range(3usize..=3);
            assert_eq!(i, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
