//! # melreq — memory access scheduling for multi-core processors
//!
//! A from-scratch, cycle-level reproduction of *"Memory Access Scheduling
//! Schemes for Systems with Multi-Core Processors"* (Zheng, Lin, Zhang,
//! Zhu — ICPP 2008): the **ME-LREQ** DRAM scheduling policy, the complete
//! set of baseline policies it is evaluated against, and every substrate
//! the study needs — a DDR2 memory model, a memory controller with the
//! paper's hardware priority tables, a two-level cache hierarchy,
//! out-of-order cores, and statistical SPEC CPU2000 workload models.
//!
//! ## Quick start
//!
//! ```
//! use melreq::{PolicyKind, SliceKind, System, SystemConfig};
//! use melreq::workloads::mix_by_name;
//! use melreq::trace::InstrStream;
//!
//! // The paper's 2-core machine running workload 2MEM-1 (wupwise+swim)
//! // under the ME-LREQ policy.
//! let mix = mix_by_name("2MEM-1");
//! let cfg = SystemConfig::paper(mix.cores(), PolicyKind::MeLreq);
//! let streams: Vec<Box<dyn InstrStream + Send>> = mix
//!     .apps()
//!     .iter()
//!     .enumerate()
//!     .map(|(i, a)| {
//!         Box::new(a.build_stream(i, SliceKind::Evaluation(0)))
//!             as Box<dyn InstrStream + Send>
//!     })
//!     .collect();
//! let me = vec![0.5, 0.1]; // profiled memory efficiency per core
//! let mut sys = System::new(cfg, streams, &me);
//! let out = sys.run_until_targets(5_000, 10_000_000);
//! assert!(out.ipc.iter().all(|&ipc| ipc > 0.0));
//! ```
//!
//! For the paper's full methodology (profiling, single-core references,
//! SMT speedup, unfairness) use [`experiment::run_mix`]; the binaries in
//! `melreq-bench` regenerate every table and figure.
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`stats`] | foundational types, streaming statistics, the paper's metrics |
//! | [`trace`] | micro-ops and synthetic instruction-stream generators |
//! | [`dram`] | cycle-level DDR2 model (channels, banks, close-page timing) |
//! | [`cache`] | set-associative write-back caches and MSHRs |
//! | [`cpu`] | the out-of-order core model |
//! | [`memctrl`] | the memory controller and **all scheduling policies** |
//! | [`workloads`] | the 26 SPEC2000 models and the Table 3 mixes |
//! | [`core`](mod@core) | system composition, cycle loop, experiments |

pub use melreq_cache as cache;
pub use melreq_core as core;
pub use melreq_cpu as cpu;
pub use melreq_dram as dram;
pub use melreq_memctrl as memctrl;
pub use melreq_stats as stats;
pub use melreq_trace as trace;
pub use melreq_workloads as workloads;

pub use melreq_core::experiment;
pub use melreq_core::{RunOutcome, System, SystemConfig};
pub use melreq_memctrl::policy::PolicyKind;
pub use melreq_memctrl::{MemoryController, PriorityTable, SchedulerPolicy};
pub use melreq_workloads::{AppClass, Mix, MixKind, SliceKind};
