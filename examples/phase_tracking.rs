//! Phase tracking: why the paper's future work (online ME estimation)
//! matters.
//!
//! Core 0 runs a *phased* program that alternates between a
//! compute-bound phase (eon-like: huge ME) and a bandwidth-bound phase
//! (swim-like: tiny ME); cores 1–3 run steady memory hogs. An off-line
//! profile can only see the phased program's *average* efficiency, so
//! classic ME-LREQ gives it a fixed middle-of-the-road priority. The
//! online estimator (`ME-LREQ-ON`) re-measures every epoch and raises
//! the program's priority exactly in the phases where serving it first
//! is cheap and valuable.
//!
//! ```text
//! cargo run --release --example phase_tracking
//! ```

use melreq::core::profile::profile_app;
use melreq::trace::{InstrStream, PhasedStream};
use melreq::workloads::{app_by_code, SliceKind};
use melreq::{PolicyKind, System, SystemConfig};

/// Ops per phase: long enough to dominate a 50 K-cycle estimation epoch.
const PHASE_OPS: u64 = 120_000;

fn phased_program(core: usize) -> PhasedStream {
    let compute = app_by_code('t'); // eon-like phase
    let stream = app_by_code('c'); // swim-like phase
    PhasedStream::new(
        "eon<->swim",
        vec![
            (compute.build_stream(core, SliceKind::Evaluation(7)), PHASE_OPS),
            (stream.build_stream(core, SliceKind::Evaluation(8)), PHASE_OPS),
        ],
    )
}

fn run(policy: PolicyKind, me: &[f64]) -> (f64, Vec<f64>) {
    let cfg = SystemConfig::paper(4, policy);
    let mut streams: Vec<Box<dyn InstrStream + Send>> =
        vec![Box::new(phased_program(0)) as Box<dyn InstrStream + Send>];
    for (i, code) in ['d', 'e', 'p'].iter().enumerate() {
        streams.push(Box::new(app_by_code(*code).build_stream(i + 1, SliceKind::Evaluation(0))));
    }
    let mut sys = System::new(cfg, streams, me);
    let out = sys.run_measured(60_000, 240_000, 1 << 34);
    assert!(!out.timed_out, "phase-tracking run timed out");
    (out.ipc.iter().sum(), out.ipc.clone())
}

/// What an off-line profiling pass actually measures for the phased
/// program: run it alone on the single-core machine and apply Equation 1
/// to the whole slice. Time-weighting means the slow, bandwidth-heavy
/// phase dominates both IPC and bandwidth, so the whole-program ME lands
/// near the hog range even though half the *ops* come from a phase that
/// deserves top priority.
fn profile_phased() -> f64 {
    let cfg = SystemConfig::paper(1, PolicyKind::HfRf);
    let stream: Box<dyn InstrStream + Send> = Box::new(phased_program(0));
    let mut sys = System::new(cfg, vec![stream], &[1.0]);
    let out = sys.run_measured(2 * PHASE_OPS, 2 * PHASE_OPS, 1 << 34);
    assert!(!out.timed_out);
    let bw = out.total_bandwidth_gbs(3.2e9);
    out.ipc[0] / bw.max(1e-3)
}

fn main() {
    let compute = profile_app(&app_by_code('t'), SliceKind::Profiling, 60_000);
    let stream = profile_app(&app_by_code('c'), SliceKind::Profiling, 60_000);
    let phased_me = profile_phased();
    let hogs: Vec<f64> = ['d', 'e', 'p']
        .iter()
        .map(|c| profile_app(&app_by_code(*c), SliceKind::Profiling, 60_000).me)
        .collect();
    let me = vec![phased_me, hogs[0], hogs[1], hogs[2]];
    println!(
        "offline whole-program profile of the phased program: ME = {:.2}\n\
         (its phases alone profile at {:.2} and {:.2}); hogs = {:?}",
        phased_me,
        compute.me,
        stream.me,
        hogs.iter().map(|m| (m * 100.0).round() / 100.0).collect::<Vec<_>>()
    );

    println!("\n{:14} {:>10} {:>26}", "policy", "sum IPC", "per-core IPC");
    for policy in
        [PolicyKind::HfRf, PolicyKind::MeLreq, PolicyKind::MeLreqOnline { epoch_cycles: 25_000 }]
    {
        let name = policy.name();
        let (total, per_core) = run(policy, &me);
        println!(
            "{:14} {:>10.3} {:>26}",
            name,
            total,
            per_core.iter().map(|x| format!("{x:.2}")).collect::<Vec<_>>().join(" ")
        );
    }
    println!(
        "\nThe online estimator re-profiles every epoch, so the phased program's\n\
         priority follows its current phase instead of its long-run average."
    );
}
