//! Starvation study: what fixed core priorities do to individual
//! programs — the phenomenon behind Figure 3 and Section 5.3's fairness
//! analysis.
//!
//! Runs one 4-core MEM workload under HF-RF, ME, FIX-0123 and FIX-3210
//! and prints each core's slowdown relative to running alone. Fixed
//! priorities visibly crush the lowest-priority core; the ME ordering is
//! consistent but still starves whoever profiles least efficient; the
//! dynamic ME-LREQ (printed last for contrast) spreads the pain.
//!
//! ```text
//! cargo run --release --example starvation_study [4MEM-5]
//! ```

use melreq::experiment::{run_mix, ExperimentOptions, ProfileCache};
use melreq::workloads::mix_by_name;
use melreq::PolicyKind;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "4MEM-5".to_string());
    let mix = mix_by_name(&name);
    let apps: Vec<&str> = mix.apps().iter().map(|a| a.name).collect();
    println!("workload {} = {:?}\n", mix.name, apps);

    let opts = ExperimentOptions {
        instructions: 80_000,
        warmup: 40_000,
        profile_instructions: 40_000,
        ..Default::default()
    };
    let cache = ProfileCache::new();

    let mut policies = PolicyKind::figure3_set(mix.cores());
    policies.push(PolicyKind::MeLreq);

    println!("{:10} {:>8} {:>8}   per-core slowdown (x)", "scheme", "speedup", "unfair");
    for kind in policies {
        let r = run_mix(&mix, &kind, &opts, &cache);
        let slowdowns: Vec<String> = r
            .ipc_single
            .iter()
            .zip(&r.ipc_multi)
            .map(|(s, m)| format!("{:>6.2}", s / m.max(1e-9)))
            .collect();
        println!(
            "{:10} {:>8.3} {:>8.3}   [{}]",
            r.policy,
            r.smt_speedup,
            r.unfairness,
            slowdowns.join(" ")
        );
    }
    println!(
        "\nReading the table: under FIX-3210 core 0 is always served last — its \
         slowdown balloons; under FIX-0123 the same happens to core 3. ME picks a \
         profile-guided order (consistent, but still a fixed pecking order). \
         ME-LREQ keeps the order dynamic and the slowdowns balanced."
    );
}
