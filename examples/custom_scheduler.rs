//! Extensibility demo: plug a *custom* scheduling policy into the
//! simulator through the public [`melreq::SchedulerPolicy`] trait and
//! race it against the paper's schemes.
//!
//! The custom policy here is **BW-LREQ**, a variant suggested by the
//! analysis in DESIGN.md: it replaces the memory-efficiency numerator
//! (`ME = IPC/BW`) with plain `1/BW_single`, on the theory that the
//! marginal weighted-speedup value of serving a request scales with the
//! inverse of the program's request rate alone.
//!
//! ```text
//! cargo run --release --example custom_scheduler [4MEM-4]
//! ```

use melreq::core::profile::profile_app;
use melreq::experiment::{run_mix, ExperimentOptions, ProfileCache};
use melreq::memctrl::policy::{Candidate, PolicyKind};
use melreq::memctrl::PriorityTable;
use melreq::stats::CoreId;
use melreq::trace::InstrStream;
use melreq::workloads::{mix_by_name, SliceKind};
use melreq::{SchedulerPolicy, System, SystemConfig};

/// `1/(BW_single · PendingRead)` priority, reusing the paper's hardware
/// table for the quantized quotients.
#[derive(Debug)]
struct BwLreq {
    table: PriorityTable,
}

impl BwLreq {
    fn new(bw_gbs: &[f64]) -> Self {
        let inv_bw: Vec<f64> = bw_gbs.iter().map(|b| 1.0 / b.max(1e-3)).collect();
        BwLreq { table: PriorityTable::new(&inv_bw) }
    }
}

impl SchedulerPolicy for BwLreq {
    fn name(&self) -> &'static str {
        "BW-LREQ"
    }

    fn select(&mut self, cands: &[Candidate], pending: &[u32]) -> usize {
        let best_core: CoreId = cands
            .iter()
            .map(|c| c.core)
            .max_by_key(|c| {
                (self.table.lookup(*c, pending[c.index()].max(1)), std::cmp::Reverse(c.index()))
            })
            .expect("non-empty");
        cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.core == best_core)
            .min_by_key(|(_, c)| (!c.row_hit, c.id))
            .map(|(i, _)| i)
            .expect("core has a candidate")
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "4MEM-4".to_string());
    let mix = mix_by_name(&name);
    let opts = ExperimentOptions {
        instructions: 80_000,
        warmup: 40_000,
        profile_instructions: 40_000,
        ..Default::default()
    };
    let cache = ProfileCache::new();

    // Reference results through the standard harness.
    println!("workload {}:", mix.name);
    for kind in [PolicyKind::HfRf, PolicyKind::Lreq, PolicyKind::MeLreq] {
        let r = run_mix(&mix, &kind, &opts, &cache);
        println!("  {:8} speedup={:.3} unfair={:.3}", r.policy, r.smt_speedup, r.unfairness);
    }

    // The custom policy, driven manually: profile, build, run, score.
    let profiles: Vec<_> = mix
        .apps()
        .iter()
        .map(|a| profile_app(a, SliceKind::Profiling, opts.profile_instructions))
        .collect();
    let bw: Vec<f64> = profiles.iter().map(|p| p.bw_gbs).collect();
    let ipc_single: Vec<f64> = mix
        .apps()
        .iter()
        .map(|a| profile_app(a, SliceKind::Evaluation(0), opts.instructions).ipc)
        .collect();

    let mut cfg = SystemConfig::paper(mix.cores(), PolicyKind::HfRf);
    cfg.policy = PolicyKind::HfRf; // placeholder; we inject the policy below
    let streams: Vec<Box<dyn InstrStream + Send>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Box::new(a.build_stream(i, SliceKind::Evaluation(0))) as Box<dyn InstrStream + Send>
        })
        .collect();
    let mut sys =
        System::with_policy(cfg, streams, Box::new(BwLreq::new(&bw)), /* read_first */ true);
    let out = sys.run_measured(opts.warmup, opts.instructions, 1 << 30);
    let speedup: f64 = out.ipc.iter().zip(&ipc_single).map(|(m, s)| m / s).sum();
    println!("  {:8} speedup={:.3} (custom policy via SchedulerPolicy trait)", "BW-LREQ", speedup);
}
