//! Quickstart: build the paper's machine, run one multiprogrammed
//! workload under ME-LREQ, and print what the memory system did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use melreq::core::profile::profile_app;
use melreq::trace::InstrStream;
use melreq::workloads::{mix_by_name, SliceKind};
use melreq::{PolicyKind, System, SystemConfig};

fn main() {
    // 1. Pick a workload from the paper's Table 3: two memory-intensive
    //    programs (wupwise + swim) on a two-core machine.
    let mix = mix_by_name("2MEM-1");
    println!(
        "workload {}: {}",
        mix.name,
        mix.apps().iter().map(|a| a.name).collect::<Vec<_>>().join(" + ")
    );

    // 2. Off-line profiling step (Equation 1): measure each program's
    //    memory efficiency alone on the single-core reference machine.
    let profiles: Vec<_> =
        mix.apps().iter().map(|a| profile_app(a, SliceKind::Profiling, 40_000)).collect();
    for p in &profiles {
        println!(
            "  profiled {:8}  IPC={:.2}  BW={:.2} GB/s  ME={:.3}",
            p.name, p.ipc, p.bw_gbs, p.me
        );
    }
    let me: Vec<f64> = profiles.iter().map(|p| p.me).collect();

    // 3. Build the paper's machine (Table 1) with the ME-LREQ policy and
    //    the profiled ME values loaded into the priority tables.
    let cfg = SystemConfig::paper(mix.cores(), PolicyKind::MeLreq);
    println!("\n{}\n", cfg.describe());
    let streams: Vec<Box<dyn InstrStream + Send>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Box::new(a.build_stream(i, SliceKind::Evaluation(0))) as Box<dyn InstrStream + Send>
        })
        .collect();
    let mut sys = System::new(cfg, streams, &me);

    // 4. Run until each core commits 50k instructions (20k warm-up).
    let out = sys.run_measured(20_000, 50_000, 1 << 28);
    assert!(!out.timed_out);

    println!("ran {} measured cycles", out.cycles);
    for (i, app) in mix.apps().iter().enumerate() {
        println!(
            "  core {i} ({:8})  IPC={:.3}  mean read latency={:.0} cycles",
            app.name, out.ipc[i], out.read_latency[i]
        );
    }
    println!(
        "total DRAM bandwidth: {:.2} GB/s;  DRAM row-hit rate: {:.1}%",
        out.total_bandwidth_gbs(3.2e9),
        sys.hierarchy().controller().dram().stats().hit_rate() * 100.0
    );
    println!(
        "controller served {} reads / {} writes under policy {}",
        sys.hierarchy().controller().stats().reads_served,
        sys.hierarchy().controller().stats().writes_served,
        sys.hierarchy().controller().policy_name()
    );
}
