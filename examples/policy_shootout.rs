//! Policy shoot-out: run one Table 3 workload under every scheduling
//! scheme of the paper and compare performance, latency and fairness —
//! a single-workload slice of Figures 2, 4 and 5.
//!
//! ```text
//! cargo run --release --example policy_shootout [4MEM-1]
//! ```

use melreq::experiment::{compare_policies, ExperimentOptions, ProfileCache};
use melreq::workloads::mix_by_name;
use melreq::PolicyKind;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "4MEM-1".to_string());
    let mix = mix_by_name(&name);
    println!(
        "workload {} on {} cores: {}",
        mix.name,
        mix.cores(),
        mix.apps().iter().map(|a| a.name).collect::<Vec<_>>().join(", ")
    );

    let opts = ExperimentOptions {
        instructions: 80_000,
        warmup: 40_000,
        profile_instructions: 40_000,
        ..Default::default()
    };
    let cache = ProfileCache::new();
    let cmp = compare_policies(&mix, &PolicyKind::figure2_set(), &opts, &cache);

    println!(
        "\n{:9} {:>9} {:>11} {:>11} {:>9}",
        "scheme", "speedup", "vs HF-RF", "read lat", "unfair"
    );
    for (i, r) in cmp.results.iter().enumerate() {
        println!(
            "{:9} {:>9.3} {:>+10.1}% {:>8.0} cy {:>9.3}",
            r.policy,
            r.smt_speedup,
            (cmp.speedup_over_baseline(i) - 1.0) * 100.0,
            r.mean_read_latency,
            r.unfairness
        );
    }

    let best = cmp
        .results
        .iter()
        .max_by(|a, b| a.smt_speedup.partial_cmp(&b.smt_speedup).expect("finite"))
        .expect("non-empty");
    println!("\nbest scheme for {}: {}", mix.name, best.policy);
}
